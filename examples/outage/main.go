// Outage demonstrates scenario-based failure injection: the busiest
// charging station goes down for the evening peak — composed with a demand
// surge in the same window — and the report shows how idle times and profit
// absorb the hit under uncoordinated drivers versus coordinated dispatch.
//
//	go run ./examples/outage
package main

import (
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/synth"
)

func main() {
	city, err := synth.Build(synth.Config{
		Seed: 6, Regions: 50, Stations: 10, Fleet: 200,
		TripsPerDay: 15 * 200, SlotMinutes: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := sim.DefaultOptions(1)

	// Find the busiest station in a healthy baseline run.
	env := sim.New(city, opts, 6)
	base := policy.Evaluate(policy.NewGroundTruth(), env, 6)
	counts := map[int]int{}
	for _, ev := range base.ChargeStats {
		counts[ev.StationID]++
	}
	busiest, most := 0, 0
	for id, c := range counts {
		if c > most {
			busiest, most = id, c
		}
	}
	fmt.Printf("busiest station: CS-%03d with %d charging events\n\n", busiest, most)

	// Declare the fault schedule once; every policy below runs under the
	// byte-identical perturbation. An equivalent spec could be loaded from
	// JSON with scenario.Load and passed to `fairmove compare -scenario`.
	spec, err := scenario.NewBuilder("evening-outage").
		Describe("busiest station dark 16:00-22:00 under a 1.5x evening surge").
		StationOutage(busiest, 16*60, 22*60).
		DemandSurge(-1, 17*60, 21*60, 1.5).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := scenario.Attach(env, spec); err != nil {
		log.Fatal(err)
	}

	run := func(name string, p policy.Policy) {
		env.Reset(6)
		p.BeginEpisode(6)
		for !env.Done() {
			env.Step(p.Act(env, env.VacantTaxis()))
		}
		res := env.Results()
		med, _ := stats.Median(res.IdleTimes())
		fmt.Printf("%-28s meanPE=%6.2f  median idle=%5.1f min  served=%d\n",
			name, metrics.FleetPE(res), med, res.ServedRequests)
	}

	baseIdle, _ := stats.Median(base.IdleTimes())
	fmt.Printf("%-28s meanPE=%6.2f  median idle=%5.1f min  served=%d\n",
		"GT, no outage", metrics.FleetPE(base), baseIdle, base.ServedRequests)
	run("GT, evening outage", policy.NewGroundTruth())
	run("Coordinator, evening outage", policy.NewCoordinator())

	fmt.Println("\nArrivals at the closed station divert to the least-loaded")
	fmt.Println("nearby alternative; coordinated dispatch absorbs the outage")
	fmt.Println("by routing charging demand around it in advance.")
}
