// Fleetcompare runs the paper's full six-way strategy comparison (ground
// truth, SD2, TQL, DQN, TBA, FairMove) on identical demand and prints the
// headline metrics of Tables II-III and Figs. 15-16.
//
//	go run ./examples/fleetcompare
package main

import (
	"fmt"
	"log"
	"time"

	fairmove "repro"
)

func main() {
	cfg := fairmove.DefaultConfig(42)
	cfg.Fleet = 200 // keep the example under a few minutes
	cfg.TrainEpisodes = 4

	sys, err := fairmove.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("comparing %d strategies on a %d-taxi fleet (training included)...\n",
		len(fairmove.Methods()), cfg.Fleet)
	start := time.Now()
	cmps, err := sys.CompareAll()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-10s %8s %8s %8s %8s %8s %9s %7s\n",
		"method", "PRCT", "PRIT", "PIPE", "PIPF", "meanPE", "PF", "served")
	for _, c := range cmps {
		fmt.Printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.2f %9.2f %7d\n",
			c.Method, c.PRCT, c.PRIT, c.PIPE, c.PIPF, c.MeanPE, c.PF, c.ServedRequests)
	}
	fmt.Printf("\nelapsed: %v\n", time.Since(start).Round(time.Second))
	fmt.Println("paper shape: FairMove best everywhere (PRCT 32.1%, PRIT 43.3%,")
	fmt.Println("PIPE 25.2%, PIPF 54.7%); DQN second; SD2 negative PRIT and PIPE.")
}
