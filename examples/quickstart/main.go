// Quickstart: build a small synthetic e-taxi city, train FairMove, and
// compare it with the uncoordinated ground-truth drivers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	fairmove "repro"
)

func main() {
	// A small city so the whole example runs in under a minute: 150 taxis,
	// with regions, stations, and demand scaled to match the paper's
	// ratios automatically.
	cfg := fairmove.DefaultConfig(7)
	cfg.Fleet = 150
	cfg.TrainEpisodes = 4

	sys, err := fairmove.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("training FairMove (CMA2C with teacher warm-start)...")
	rep := sys.Train()
	fmt.Printf("  %d episodes, %d transitions; final mean reward %.3f\n",
		rep.Episodes, rep.Transitions, rep.MeanReward[len(rep.MeanReward)-1])

	gt, err := sys.Evaluate(fairmove.GT)
	if err != nil {
		log.Fatal(err)
	}
	fm, err := sys.Evaluate(fairmove.FairMove)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nresults on identical demand:")
	for _, r := range []fairmove.EvalReport{gt, fm} {
		fmt.Printf("  %-9s meanPE=%6.2f CNY/h  PF=%7.2f  served=%d/%d  median cruise=%.1f min  median idle=%.1f min\n",
			r.Method, r.MeanPE, r.PF, r.ServedRequests,
			r.ServedRequests+r.UnservedRequests, r.MedianCruiseMin, r.MedianIdleMin)
	}

	dPE := (fm.MeanPE - gt.MeanPE) / gt.MeanPE * 100
	dPF := (gt.PF - fm.PF) / gt.PF * 100
	fmt.Printf("\nFairMove vs ground truth: %+.1f%% profit efficiency, %+.1f%% profit fairness\n", dPE, dPF)
}
