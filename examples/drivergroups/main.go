// Drivergroups demonstrates the Section V extension: dividing drivers into
// performance tiers (the "five-star rating" groups taxi companies assign)
// and measuring profit fairness within each group, under both uncoordinated
// drivers and the coordinated fairness-aware dispatcher.
//
//	go run ./examples/drivergroups
package main

import (
	"fmt"
	"log"

	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synth"
)

func main() {
	city, err := synth.Build(synth.Config{
		Seed: 5, Regions: 50, Stations: 12, Fleet: 200,
		TripsPerDay: 15 * 200, SlotMinutes: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := sim.DefaultOptions(2)
	opts.WarmupDays = 1
	env := sim.New(city, opts, 5)

	show := func(name string, p policy.Policy) {
		res := policy.Evaluate(p, env, 5)
		assign, err := metrics.StarGroupsByPE(res, 5)
		if err != nil {
			log.Fatal(err)
		}
		groups := metrics.WithinGroupFairness(res, assign)
		fmt.Printf("%s: fleet PF=%.2f, within-group mean PF=%.2f\n",
			name, metrics.ProfitFairness(res), metrics.MeanWithinGroupPF(groups))
		for _, g := range groups {
			stars := g.Group + 1
			fmt.Printf("  %d★ n=%-4d meanPE=%6.2f CNY/h  within-group PF=%6.2f\n",
				stars, g.N, g.MeanPE, g.PF)
		}
	}

	show("uncoordinated drivers (GT)", policy.NewGroundTruth())
	fmt.Println()
	show("fairness-aware coordination", policy.NewCoordinator())

	fmt.Println("\nSection V's point: a veteran out-earning a novice is not unfair,")
	fmt.Println("so fairness should be judged within peer groups — which the")
	fmt.Println("within-group PF numbers above make visible.")
}
