// Chargingpeaks reproduces the paper's data-driven charging findings
// (Section II-C) from a ground-truth simulation: session durations
// (Fig. 3), cheap-band plug-in peaks (Fig. 4), and the post-charge first
// cruise time (Figs. 5-6), using the internal report generator.
//
//	go run ./examples/chargingpeaks
package main

import (
	"fmt"
	"log"

	"repro/internal/report"
)

func main() {
	cfg := report.DefaultConfig(3, report.ScaleSmall)
	cfg.Days = 2

	fmt.Println("running the uncoordinated (ground truth) fleet for two days...")
	b, err := report.RunGTOnly(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(b.Fig3())
	fmt.Println(b.Fig4())
	fmt.Println(b.Fig5())
	fmt.Println(b.Fig6())
	fmt.Println(b.Fig8())

	fmt.Println("The paper's FairMove system exists because of these patterns:")
	fmt.Println("long sessions make station choice costly, cheap-band herding")
	fmt.Println("creates queues, and post-charge seek times depend on where you")
	fmt.Println("charged — so displacement and charging must be planned together.")
}
