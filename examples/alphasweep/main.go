// Alphasweep reproduces the paper's Table IV sensitivity study: how the
// efficiency/fairness weight α affects the average training reward, and how
// the boundary cases (pure efficiency α=1 vs pure fairness α=0) change the
// evaluated fleet metrics.
//
//	go run ./examples/alphasweep
package main

import (
	"fmt"
	"log"

	fairmove "repro"
)

func main() {
	cfg := fairmove.DefaultConfig(11)
	cfg.Fleet = 150
	cfg.TrainEpisodes = 3

	sys, err := fairmove.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	alphas := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	fmt.Println("sweeping α (each value trains a fresh FairMove)...")
	got, rewards, err := sys.AlphaSweep(alphas)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTable IV — average reward r under different α:")
	best := 0
	for i := range got {
		if rewards[i] > rewards[best] {
			best = i
		}
	}
	for i := range got {
		marker := " "
		if i == best {
			marker = "*"
		}
		fmt.Printf("  α=%.1f  r=%.3f %s\n", got[i], rewards[i], marker)
	}
	fmt.Printf("\nbest α = %.1f (the paper finds 0.6-0.8 best and uses 0.6)\n", got[best])
}
