package fairmove

// NN-layer benchmark set: the pinned benchmarks behind BENCH_nn.json,
// recording the float32 blocked-GEMM rewrite of internal/nn against the
// float64 per-row engine it replaced. Where BENCH_hotpath.json tracks the
// per-slot simulation path, this file tracks the learning path: batched
// inference and the three batched update steps (CMA2C critic, CMA2C actor,
// DQN minibatch learn) that dominate training time.
//
// The set is pinned like the hot-path set: names are stable identifiers in
// testdata/alloc_floors.json (enforced by TestAllocGate, which gates both
// sets) and in BENCH_nn.json (rewritten by `make bench-record`). The
// "before" column holds the float64-engine numbers measured at the recorded
// baseline commit and is preserved across re-records.

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/sim"
)

// nnBenchTransitions builds a deterministic synthetic replay buffer with the
// deployed observation width and full action masks.
func nnBenchTransitions(n int) []policy.Transition {
	src := rng.New(11)
	buf := make([]policy.Transition, n)
	for i := range buf {
		obs := make([]float64, sim.FeatureSize)
		next := make([]float64, sim.FeatureSize)
		for j := range obs {
			obs[j] = src.Uniform(-1, 1)
			next[j] = src.Uniform(-1, 1)
		}
		tr := policy.Transition{
			Obs: obs, NextObs: next,
			Action: src.Intn(sim.NumActions), Reward: src.Uniform(-1, 1),
			Elapsed: 1,
		}
		for j := range tr.Mask {
			tr.Mask[j] = true
		}
		for j := range tr.NextMask {
			tr.NextMask[j] = true
		}
		buf[i] = tr
	}
	return buf
}

// nnBenchSet returns the pinned NN-layer benchmarks. Shapes match the
// deployed networks (FeatureSize→64→64→NumActions and the 1-wide critic);
// update steps run at the configured minibatch size over a 512-transition
// buffer with a fixed sampling pattern.
func nnBenchSet(tb testing.TB) []hotBench {
	return []hotBench{
		{"nn_forward_batch256", func(b *testing.B) {
			m, x := hotBenchNet()
			batch := nn.NewMat(256, sim.FeatureSize)
			for r := 0; r < batch.Rows; r++ {
				batch.SetRow(r, x)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardBatch(batch, 1)
			}
		}},
		{"cma2c_critic_step", func(b *testing.B) {
			f, buf, idxs := nnBenchFairMove(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.BenchCriticStep(buf, idxs)
			}
		}},
		{"cma2c_actor_step", func(b *testing.B) {
			f, buf, idxs := nnBenchFairMove(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.BenchActorStep(buf, idxs)
			}
		}},
		{"dqn_learn_step", func(b *testing.B) {
			d := policy.NewDQN(0.6, 7)
			for _, tr := range nnBenchTransitions(512) {
				d.BenchRemember(tr)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.BenchLearnStep()
			}
		}},
	}
}

func nnBenchFairMove(b *testing.B) (*core.FairMove, []policy.Transition, []int) {
	cfg := core.DefaultConfig(0.6, 7)
	f, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	buf := nnBenchTransitions(512)
	idxs := make([]int, cfg.Batch)
	for i := range idxs {
		idxs[i] = (i * 37) % len(buf)
	}
	return f, buf, idxs
}

const nnBenchPath = "BENCH_nn.json"

// TestRecordNNBench re-measures the pinned NN-layer set (best ns/op of three
// repetitions, exact allocs/op) and rewrites the "after" column of
// BENCH_nn.json, preserving the recorded float64 baseline in "before".
// Guarded by -recordbench; run at -benchscale=full for the committed file
// (the set itself is scale-independent — shapes are fixed by the deployed
// networks — so the flag only labels the file).
func TestRecordNNBench(t *testing.T) {
	if !*recordBench {
		t.Skip("pass -recordbench (make bench-record) to rewrite BENCH_nn.json")
	}
	prior := map[string]hotpathBenchEntry{}
	out := hotpathBenchFile{Command: "make bench-record", BenchScale: resolveBenchScale(t)}
	if data, err := os.ReadFile(nnBenchPath); err == nil {
		var old hotpathBenchFile
		if err := json.Unmarshal(data, &old); err != nil {
			t.Fatalf("bad %s: %v", nnBenchPath, err)
		}
		out.BaselineCommit = old.BaselineCommit
		for _, e := range old.Entries {
			prior[e.Name] = e
		}
	}
	for _, hb := range nnBenchSet(t) {
		entry := hotpathBenchEntry{Name: hb.name, Before: prior[hb.name].Before}
		var allocs int64
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(hb.run)
			if ns := float64(r.NsPerOp()); best == 0 || ns < best {
				best = ns
			}
			allocs = r.AllocsPerOp()
		}
		entry.After = hotpathBenchCell{NsPerOp: best, AllocsPerOp: allocs}
		if entry.Before.NsPerOp > 0 {
			entry.Speedup = entry.Before.NsPerOp / entry.After.NsPerOp
		}
		t.Logf("%-22s %12.0f ns/op %4d allocs/op (before: %.0f ns/op, %d allocs/op)",
			hb.name, entry.After.NsPerOp, entry.After.AllocsPerOp,
			entry.Before.NsPerOp, entry.Before.AllocsPerOp)
		out.Entries = append(out.Entries, entry)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(nnBenchPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote " + nnBenchPath)
}
