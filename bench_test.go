package fairmove

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). The expensive
// part — building the synthetic city, training all six strategies, and
// running the comparison — happens once per process and is shared; each
// benchmark measures the (re)computation of its table or figure from the
// collected results and logs the regenerated content so that
// `go test -bench=. -benchmem` doubles as the report generator for
// EXPERIMENTS.md.
//
// Scale control:
//
//	go test -bench=.                 # small scale (seconds)
//	go test -bench=. -benchscale=default   # EXPERIMENTS.md scale (minutes)
//	go test -bench=. -benchscale=full      # the paper's 20,130-taxi fleet
import (
	"flag"
	"sync"
	"testing"

	"repro/internal/report"
	"repro/internal/telemetry"
)

var benchScale = flag.String("benchscale", "small", "benchmark scale: small, default, or full")

var (
	benchOnce   sync.Once
	benchBundle *report.Bundle
	benchErr    error
)

// benchSink prevents dead-code elimination of the measured formatting work.
var benchSink string

func sharedBundle(b *testing.B) *report.Bundle {
	b.Helper()
	benchOnce.Do(func() {
		scale := report.ScaleSmall
		switch *benchScale {
		case "default":
			scale = report.ScaleDefault
		case "full":
			scale = report.ScaleFull
		}
		cfg := report.DefaultConfig(42, scale)
		benchBundle, benchErr = report.RunFull(cfg, []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchBundle
}

// benchSection measures regenerating one report section and logs it once.
func benchSection(b *testing.B, f func() string) {
	b.Helper()
	bd := sharedBundle(b)
	_ = bd
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = f()
	}
	b.StopTimer()
	b.Log("\n" + benchSink)
}

// --- Data-driven findings (Section II-C) ---

func BenchmarkFig3ChargingTime(b *testing.B) { benchSection(b, sharedBundle(b).Fig3) }

func BenchmarkFig4ChargingPeaks(b *testing.B) { benchSection(b, sharedBundle(b).Fig4) }

func BenchmarkFig5FirstCruiseCDF(b *testing.B) { benchSection(b, sharedBundle(b).Fig5) }

func BenchmarkFig6FirstCruiseByStation(b *testing.B) { benchSection(b, sharedBundle(b).Fig6) }

func BenchmarkFig7RevenueHeatmap(b *testing.B) { benchSection(b, sharedBundle(b).Fig7) }

func BenchmarkFig8ProfitInequality(b *testing.B) { benchSection(b, sharedBundle(b).Fig8) }

// --- Displacement comparison (Section IV-B) ---

func BenchmarkFig10CruiseDistByMethod(b *testing.B) { benchSection(b, sharedBundle(b).Fig10) }

func BenchmarkFig11PRCTByHour(b *testing.B) { benchSection(b, sharedBundle(b).Fig11) }

func BenchmarkTable2PRCT(b *testing.B) { benchSection(b, sharedBundle(b).Table2) }

func BenchmarkFig12IdleDistByMethod(b *testing.B) { benchSection(b, sharedBundle(b).Fig12) }

func BenchmarkFig13PRITByHour(b *testing.B) { benchSection(b, sharedBundle(b).Fig13) }

func BenchmarkTable3PRIT(b *testing.B) { benchSection(b, sharedBundle(b).Table3) }

func BenchmarkFig14PEDistByMethod(b *testing.B) { benchSection(b, sharedBundle(b).Fig14) }

func BenchmarkFig15PIPE(b *testing.B) { benchSection(b, sharedBundle(b).Fig15) }

func BenchmarkFig16PIPF(b *testing.B) { benchSection(b, sharedBundle(b).Fig16) }

func BenchmarkTable4AlphaSweep(b *testing.B) { benchSection(b, sharedBundle(b).Table4) }

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationStationChoice(b *testing.B) {
	benchSection(b, func() string {
		bd := sharedBundle(b)
		return bd.FormatAblations()
	})
}

func BenchmarkAblationForecast(b *testing.B) {
	benchSection(b, func() string {
		bd := sharedBundle(b)
		return bd.FormatAblations()
	})
}

// BenchmarkHeadlineComparison regenerates the summary table of all methods.
func BenchmarkHeadlineComparison(b *testing.B) {
	benchSection(b, sharedBundle(b).FormatComparisonSummary)
}

// --- Telemetry overhead ---

// The pair below measures the same CompareAll re-evaluation (policies are
// trained once, outside the timer) with instrumentation off and on. The
// contract is <5% wall-clock overhead: disabled telemetry is nil-handle
// no-ops, enabled telemetry is pre-resolved atomic adds on the slot path.
func BenchmarkCompareAllNoTelemetry(b *testing.B)   { benchCompareAll(b, false) }
func BenchmarkCompareAllWithTelemetry(b *testing.B) { benchCompareAll(b, true) }

func benchCompareAll(b *testing.B, tel bool) {
	s, err := NewSystem(microConfig(11, 0))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.CompareAll(); err != nil { // train and warm the policy cache
		b.Fatal(err)
	}
	if tel {
		s.SetTelemetry(telemetry.NewRegistry())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CompareAll(); err != nil {
			b.Fatal(err)
		}
	}
}
