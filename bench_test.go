package fairmove

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). The expensive
// part — building the synthetic city, training all six strategies, and
// running the comparison — happens once per process and is shared; each
// benchmark measures the (re)computation of its table or figure from the
// collected results and logs the regenerated content so that
// `go test -bench=. -benchmem` doubles as the report generator for
// EXPERIMENTS.md.
//
// Scale control:
//
//	go test -bench=.                 # small scale (seconds)
//	go test -bench=. -benchscale=default   # EXPERIMENTS.md scale (minutes)
//	go test -bench=. -benchscale=full      # the paper's 20,130-taxi fleet
import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/invariant"
	"repro/internal/report"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

var benchScale = flag.String("benchscale", "small", "benchmark scale: small, default, full, or mega")

var (
	benchOnce   sync.Once
	benchBundle *report.Bundle
	benchErr    error
)

// benchSink prevents dead-code elimination of the measured formatting work.
var benchSink string

// resolveBenchScale validates -benchscale and fails loudly on anything
// outside the known ladder — a typo must not silently fall back to small.
func resolveBenchScale(tb testing.TB) string {
	tb.Helper()
	switch *benchScale {
	case "small", "default", "full", "mega":
		return *benchScale
	}
	tb.Fatalf("unknown -benchscale %q: want small, default, full, or mega", *benchScale)
	return ""
}

// benchCityConfig maps the validated scale to a synthetic-city size for the
// engine stepping benchmarks (the report bundle has its own scale mapping).
func benchCityConfig(tb testing.TB) synth.Config {
	switch resolveBenchScale(tb) {
	case "default":
		return synth.DefaultConfig(42)
	case "full":
		return synth.FullScaleConfig(42)
	case "mega":
		return synth.MegaScaleConfig(42)
	default:
		return synth.TestConfig(42)
	}
}

func sharedBundle(b *testing.B) *report.Bundle {
	b.Helper()
	scaleName := resolveBenchScale(b)
	if scaleName == "mega" {
		// The mega tier exists for the engine stepping benchmarks only:
		// training all six strategies on a 200k fleet is not a benchmark,
		// it is a datacenter bill.
		b.Skip("report bundle benchmarks do not run at -benchscale=mega")
	}
	benchOnce.Do(func() {
		scale := report.ScaleSmall
		switch scaleName {
		case "default":
			scale = report.ScaleDefault
		case "full":
			scale = report.ScaleFull
		}
		cfg := report.DefaultConfig(42, scale)
		benchBundle, benchErr = report.RunFull(cfg, []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchBundle
}

// benchSection measures regenerating one report section and logs it once.
func benchSection(b *testing.B, f func() string) {
	b.Helper()
	bd := sharedBundle(b)
	_ = bd
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = f()
	}
	b.StopTimer()
	b.Log("\n" + benchSink)
}

// --- Data-driven findings (Section II-C) ---

func BenchmarkFig3ChargingTime(b *testing.B) { benchSection(b, sharedBundle(b).Fig3) }

func BenchmarkFig4ChargingPeaks(b *testing.B) { benchSection(b, sharedBundle(b).Fig4) }

func BenchmarkFig5FirstCruiseCDF(b *testing.B) { benchSection(b, sharedBundle(b).Fig5) }

func BenchmarkFig6FirstCruiseByStation(b *testing.B) { benchSection(b, sharedBundle(b).Fig6) }

func BenchmarkFig7RevenueHeatmap(b *testing.B) { benchSection(b, sharedBundle(b).Fig7) }

func BenchmarkFig8ProfitInequality(b *testing.B) { benchSection(b, sharedBundle(b).Fig8) }

// --- Displacement comparison (Section IV-B) ---

func BenchmarkFig10CruiseDistByMethod(b *testing.B) { benchSection(b, sharedBundle(b).Fig10) }

func BenchmarkFig11PRCTByHour(b *testing.B) { benchSection(b, sharedBundle(b).Fig11) }

func BenchmarkTable2PRCT(b *testing.B) { benchSection(b, sharedBundle(b).Table2) }

func BenchmarkFig12IdleDistByMethod(b *testing.B) { benchSection(b, sharedBundle(b).Fig12) }

func BenchmarkFig13PRITByHour(b *testing.B) { benchSection(b, sharedBundle(b).Fig13) }

func BenchmarkTable3PRIT(b *testing.B) { benchSection(b, sharedBundle(b).Table3) }

func BenchmarkFig14PEDistByMethod(b *testing.B) { benchSection(b, sharedBundle(b).Fig14) }

func BenchmarkFig15PIPE(b *testing.B) { benchSection(b, sharedBundle(b).Fig15) }

func BenchmarkFig16PIPF(b *testing.B) { benchSection(b, sharedBundle(b).Fig16) }

func BenchmarkTable4AlphaSweep(b *testing.B) { benchSection(b, sharedBundle(b).Table4) }

// --- Ablations (DESIGN.md §5) ---

func BenchmarkAblationStationChoice(b *testing.B) {
	benchSection(b, func() string {
		bd := sharedBundle(b)
		return bd.FormatAblations()
	})
}

func BenchmarkAblationForecast(b *testing.B) {
	benchSection(b, func() string {
		bd := sharedBundle(b)
		return bd.FormatAblations()
	})
}

// BenchmarkHeadlineComparison regenerates the summary table of all methods.
func BenchmarkHeadlineComparison(b *testing.B) {
	benchSection(b, sharedBundle(b).FormatComparisonSummary)
}

// --- Engine stepping (the sharding tentpole) ---

var (
	benchCityMu sync.Mutex
	benchCities = map[string]*synth.City{}
)

// benchCity builds (once per scale, shared across benchmarks) the stepping
// city for the current -benchscale.
func benchCity(tb testing.TB) *synth.City {
	cfg := benchCityConfig(tb)
	name := resolveBenchScale(tb)
	benchCityMu.Lock()
	defer benchCityMu.Unlock()
	if c, ok := benchCities[name]; ok {
		return c
	}
	city, err := synth.Build(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	benchCities[name] = city
	return city
}

// benchStepSlots reports ns per simulated slot: each iteration is one
// Step(nil), with episode resets excluded from the timer.
func benchStepSlots(b *testing.B, env sim.Environment) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if env.Done() {
			b.StopTimer()
			env.Reset(42)
			b.StartTimer()
		}
		env.Step(nil)
	}
}

// BenchmarkEngineStepLegacy is the pre-sharding baseline: the sequential
// engine's per-minute fleet sweeps.
func BenchmarkEngineStepLegacy(b *testing.B) {
	benchStepSlots(b, sim.New(benchCity(b), sim.DefaultOptions(1), 42))
}

// BenchmarkEngineStepSharded steps the region-sharded engine across the
// shard ladder. The shards=1 row isolates the event-calendar win over the
// legacy sweep; higher counts add barrier overhead and (on multi-core
// hosts) concurrency.
func BenchmarkEngineStepSharded(b *testing.B) {
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			benchStepSlots(b, shard.New(benchCity(b), sim.DefaultOptions(1), k, 42))
		})
	}
}

// --- Telemetry overhead ---

// The pair below measures the same CompareAll re-evaluation (policies are
// trained once, outside the timer) with instrumentation off and on. The
// contract is <5% wall-clock overhead: disabled telemetry is nil-handle
// no-ops, enabled telemetry is pre-resolved atomic adds on the slot path.
func BenchmarkCompareAllNoTelemetry(b *testing.B)   { benchCompareAll(b, false) }
func BenchmarkCompareAllWithTelemetry(b *testing.B) { benchCompareAll(b, true) }

func benchCompareAll(b *testing.B, tel bool) {
	s, err := NewSystem(microConfig(11, 0))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.CompareAll(); err != nil { // train and warm the policy cache
		b.Fatal(err)
	}
	if tel {
		s.SetTelemetry(telemetry.NewRegistry())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.CompareAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- BENCH_sharding.json recorder ---

var recordBench = flag.Bool("recordbench", false,
	"re-measure the sharding benchmarks and rewrite BENCH_sharding.json (make bench-record)")

type shardBenchEntry struct {
	Engine    string  `json:"engine"` // "legacy" or "sharded"
	Shards    int     `json:"shards,omitempty"`
	NsPerSlot float64 `json:"ns_per_slot"`
	Slots     int     `json:"slots_timed"`
}

type shardBenchScale struct {
	Scale          string            `json:"scale"`
	Fleet          int               `json:"fleet"`
	Regions        int               `json:"regions"`
	Engines        []shardBenchEntry `json:"engines"`
	SpeedupShards4 float64           `json:"speedup_shards4_vs_legacy"`
}

type shardBenchFile struct {
	Command string            `json:"command"`
	Scales  []shardBenchScale `json:"scales"`
}

// TestRecordShardingBench re-measures slot-stepping throughput for the
// legacy engine and the sharded engine at shards 1, 2, 4, 8 across the
// small/default/full scales, and rewrites BENCH_sharding.json. Guarded by
// -recordbench because the full tier steps the paper's 20,130-taxi fleet.
func TestRecordShardingBench(t *testing.T) {
	if !*recordBench {
		t.Skip("pass -recordbench (make bench-record) to rewrite BENCH_sharding.json")
	}
	configs := []struct {
		name string
		cfg  synth.Config
	}{
		{"small", synth.TestConfig(42)},
		{"default", synth.DefaultConfig(42)},
		{"full", synth.FullScaleConfig(42)},
	}
	out := shardBenchFile{Command: "make bench-record"}
	for _, sc := range configs {
		city, err := synth.Build(sc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Best of three repetitions per engine: the recorder wants the
		// engines' algorithmic cost, and on a shared host the minimum is a
		// far more stable estimator of that than any single run's mean.
		measure := func(build func() sim.Environment) (float64, int) {
			best, bestN := 0.0, 0
			for rep := 0; rep < 3; rep++ {
				r := testing.Benchmark(func(b *testing.B) {
					benchStepSlots(b, build())
				})
				if ns := float64(r.NsPerOp()); best == 0 || ns < best {
					best, bestN = ns, r.N
				}
			}
			return best, bestN
		}
		row := shardBenchScale{Scale: sc.name, Fleet: sc.cfg.Fleet, Regions: sc.cfg.Regions}
		legacyNs, n := measure(func() sim.Environment { return sim.New(city, sim.DefaultOptions(1), 42) })
		row.Engines = append(row.Engines, shardBenchEntry{Engine: "legacy", NsPerSlot: legacyNs, Slots: n})
		t.Logf("%s: legacy %.0f ns/slot (%d slots)", sc.name, legacyNs, n)
		for _, k := range []int{1, 2, 4, 8} {
			k := k
			ns, n := measure(func() sim.Environment { return shard.New(city, sim.DefaultOptions(1), k, 42) })
			row.Engines = append(row.Engines, shardBenchEntry{Engine: "sharded", Shards: k, NsPerSlot: ns, Slots: n})
			t.Logf("%s: shards=%d %.0f ns/slot (%d slots, %.2fx vs legacy)", sc.name, k, ns, n, legacyNs/ns)
			if k == 4 && ns > 0 {
				row.SpeedupShards4 = legacyNs / ns
			}
		}
		out.Scales = append(out.Scales, row)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_sharding.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_sharding.json")
}

// --- BENCH_battery.json recorder ---

type batteryBenchFile struct {
	Command      string  `json:"command"`
	Compositions int     `json:"compositions"`
	Runs         int     `json:"runs"` // compositions × engines
	WallSeconds  float64 `json:"wall_seconds_best_of_3"`
	PerRunMs     float64 `json:"ms_per_run"`
}

// TestRecordBatteryBench re-measures the robustness battery's wall clock at
// its CI size (N=64 compositions × 3 engine runs each), best of three, and
// rewrites BENCH_battery.json. The battery must also pass while timed — a
// fast but failing battery is not a benchmark.
func TestRecordBatteryBench(t *testing.T) {
	if !*recordBench {
		t.Skip("pass -recordbench (make bench-record) to rewrite BENCH_battery.json")
	}
	cfg := invariant.BatteryConfig{N: 64}
	var rep *invariant.Report
	best := 0.0
	for i := 0; i < 3; i++ {
		r := testing.Benchmark(func(b *testing.B) {
			for j := 0; j < b.N; j++ {
				got, err := invariant.RunBattery(cfg)
				if err != nil {
					b.Fatal(err)
				}
				rep = got
			}
		})
		if ns := float64(r.NsPerOp()); best == 0 || ns < best {
			best = ns
		}
	}
	if !rep.OK() {
		t.Fatalf("battery failed while being timed: %d failures", len(rep.Failures))
	}
	out := batteryBenchFile{
		Command:      "make bench-record",
		Compositions: rep.Compositions,
		Runs:         rep.Runs,
		WallSeconds:  best / 1e9,
		PerRunMs:     best / 1e6 / float64(rep.Runs),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_battery.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_battery.json: %d runs in %.2fs", out.Runs, out.WallSeconds)
}
