package fairmove

// Hot-path benchmark set: the pinned micro/meso benchmarks behind
// BENCH_hotpath.json and `make alloc-gate`. Each entry measures one layer of
// the per-slot critical path — sequential stepping, sharded stepping, a
// single observation build, single-row and batched network inference, and
// the nearest-station lookup the matcher leans on.
//
// The set is pinned: names are stable identifiers recorded in
// testdata/alloc_floors.json (allocs/op ceilings, enforced by TestAllocGate)
// and in BENCH_hotpath.json (ns/op + allocs/op, rewritten by
// `make bench-record`). Renaming an entry is an interface change.

import (
	"encoding/json"
	"flag"
	"os"
	"testing"

	"repro/internal/geo"
	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/sim"
)

type hotBench struct {
	name string
	run  func(b *testing.B)
}

// hotpathSet returns the pinned benchmarks at the current -benchscale.
// Engine benchmarks use the scale's city; the nn and geo entries are
// scale-independent (fixed shapes matching the deployed policy network and
// station index).
func hotpathSet(tb testing.TB) []hotBench {
	return []hotBench{
		{"sim_step_legacy", func(b *testing.B) {
			benchStepSlots(b, sim.New(benchCity(b), sim.DefaultOptions(1), 42))
		}},
		{"sim_step_sharded1", func(b *testing.B) {
			benchStepSlots(b, shard.New(benchCity(b), sim.DefaultOptions(1), 1, 42))
		}},
		{"env_observe", func(b *testing.B) {
			env := sim.New(benchCity(b), sim.DefaultOptions(1), 42)
			ids := env.VacantTaxis()
			if len(ids) == 0 {
				b.Fatal("no vacant taxis at reset")
			}
			id := ids[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				env.Observe(id)
			}
		}},
		{"nn_forward1", func(b *testing.B) {
			m, x := hotBenchNet()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Forward1(x)
			}
		}},
		{"nn_forward_rows256", func(b *testing.B) {
			m, x := hotBenchNet()
			rows := make([][]float64, 256)
			for i := range rows {
				rows[i] = x
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ForwardRows(rows, 1)
			}
		}},
		{"geo_station_lookup", func(b *testing.B) {
			idx, queries := hotBenchIndex()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchNeighborSink = stationLookup(idx, queries[i%len(queries)], sim.KStations)
			}
		}},
	}
}

// benchNeighborSink keeps the lookup result live and doubles as the reused
// destination buffer for the amortized lookup API.
var benchNeighborSink []geo.Neighbor

// stationLookup is the lookup the matcher's hot path performs. It is a
// seam: the benchmark measures whatever API the engines actually use —
// since the zero-allocation pass, KNearestInto through a reused buffer.
func stationLookup(g *geo.GridIndex, q geo.Point, k int) []geo.Neighbor {
	return g.KNearestInto(q, k, benchNeighborSink[:0])
}

// hotBenchNet builds the deployed policy-network shape (observation width in,
// one Q/logit per action out) and a deterministic input row.
func hotBenchNet() (*nn.MLP, []float64) {
	src := rng.New(3)
	m := nn.NewMLP(src, []int{sim.FeatureSize, 64, 64, sim.NumActions}, nn.ReLU, nn.Identity)
	x := make([]float64, sim.FeatureSize)
	for i := range x {
		x[i] = src.Uniform(-1, 1)
	}
	return m, x
}

// hotBenchIndex builds a station-density grid index (600 points ≈ the
// paper's charging network) plus a deterministic query workload.
func hotBenchIndex() (*geo.GridIndex, []geo.Point) {
	src := rng.New(7)
	pts := make([]geo.Point, 600)
	for i := range pts {
		pts[i] = geo.Point{
			Lng: src.Uniform(113.75, 114.65),
			Lat: src.Uniform(22.45, 22.85),
		}
	}
	idx := geo.NewGridIndex(pts, nil, 24)
	queries := make([]geo.Point, 1024)
	for i := range queries {
		queries[i] = geo.Point{
			Lng: src.Uniform(113.75, 114.65),
			Lat: src.Uniform(22.45, 22.85),
		}
	}
	return idx, queries
}

// BenchmarkHotpath runs the pinned set as sub-benchmarks:
//
//	go test -bench '^BenchmarkHotpath$' -benchmem -benchscale=full -run '^$' .
func BenchmarkHotpath(b *testing.B) {
	for _, hb := range hotpathSet(b) {
		b.Run(hb.name, hb.run)
	}
}

// --- allocation-regression gate (make alloc-gate) ---

var updateAllocFloors = flag.Bool("update-alloc-floors", false,
	"rewrite testdata/alloc_floors.json from the current measurements (make alloc-gate UPDATE=1)")

const allocFloorsPath = "testdata/alloc_floors.json"

// TestAllocGate measures allocs/op of every pinned benchmark — the hot-path
// set here plus the NN-layer set in bench_nn_test.go — and fails if any
// exceeds its recorded floor: the regression gate for the zero-allocation
// work. Floors are exact allocs/op at -benchscale=small
// (steady-state allocation counts do not depend on fleet size, so the gate
// stays cheap in ci). After a deliberate change, regenerate the floors with
//
//	go test -run TestAllocGate -update-alloc-floors .
//
// and commit the diff; the gate exists precisely so that step shows up in
// review.
func TestAllocGate(t *testing.T) {
	floors := map[string]int64{}
	if !*updateAllocFloors {
		data, err := os.ReadFile(allocFloorsPath)
		if err != nil {
			t.Fatalf("alloc-gate: %v (run with -update-alloc-floors to create)", err)
		}
		if err := json.Unmarshal(data, &floors); err != nil {
			t.Fatalf("alloc-gate: bad %s: %v", allocFloorsPath, err)
		}
	}
	gated := append(hotpathSet(t), nnBenchSet(t)...)
	measured := map[string]int64{}
	for _, hb := range gated {
		r := testing.Benchmark(hb.run)
		measured[hb.name] = r.AllocsPerOp()
		t.Logf("%-22s %d allocs/op (%d ops)", hb.name, r.AllocsPerOp(), r.N)
	}
	if *updateAllocFloors {
		data, err := json.MarshalIndent(measured, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(allocFloorsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", allocFloorsPath)
		return
	}
	for _, hb := range gated {
		floor, ok := floors[hb.name]
		if !ok {
			t.Errorf("alloc-gate: %s has no recorded floor; run -update-alloc-floors", hb.name)
			continue
		}
		if got := measured[hb.name]; got > floor {
			t.Errorf("alloc-gate: %s allocates %d/op, floor is %d/op", hb.name, got, floor)
		}
	}
}

// --- BENCH_hotpath.json recorder (make bench-record) ---

type hotpathBenchFile struct {
	Command        string              `json:"command"`
	BenchScale     string              `json:"benchscale"`
	BaselineCommit string              `json:"baseline_commit"`
	Entries        []hotpathBenchEntry `json:"entries"`
}

type hotpathBenchEntry struct {
	Name    string           `json:"name"`
	Before  hotpathBenchCell `json:"before"`
	After   hotpathBenchCell `json:"after"`
	Speedup float64          `json:"speedup,omitempty"`
}

type hotpathBenchCell struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

const hotpathBenchPath = "BENCH_hotpath.json"

// TestRecordHotpathBench re-measures the pinned hot-path set (best ns/op of
// three repetitions, exact allocs/op) and rewrites the "after" column of
// BENCH_hotpath.json. The "before" column — the same benchmarks run against
// the pre-optimization tree at the recorded baseline commit — is preserved
// from the existing file, so the before/after pairing survives re-records.
// Guarded by -recordbench; run at -benchscale=full for the committed file.
func TestRecordHotpathBench(t *testing.T) {
	if !*recordBench {
		t.Skip("pass -recordbench (make bench-record) to rewrite BENCH_hotpath.json")
	}
	prior := map[string]hotpathBenchEntry{}
	out := hotpathBenchFile{Command: "make bench-record", BenchScale: resolveBenchScale(t)}
	if data, err := os.ReadFile(hotpathBenchPath); err == nil {
		var old hotpathBenchFile
		if err := json.Unmarshal(data, &old); err != nil {
			t.Fatalf("bad %s: %v", hotpathBenchPath, err)
		}
		out.BaselineCommit = old.BaselineCommit
		for _, e := range old.Entries {
			prior[e.Name] = e
		}
	}
	for _, hb := range hotpathSet(t) {
		entry := hotpathBenchEntry{Name: hb.name, Before: prior[hb.name].Before}
		var allocs int64
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			r := testing.Benchmark(hb.run)
			if ns := float64(r.NsPerOp()); best == 0 || ns < best {
				best = ns
			}
			allocs = r.AllocsPerOp()
		}
		entry.After = hotpathBenchCell{NsPerOp: best, AllocsPerOp: allocs}
		if entry.Before.NsPerOp > 0 {
			entry.Speedup = entry.Before.NsPerOp / entry.After.NsPerOp
		}
		t.Logf("%-22s %12.0f ns/op %4d allocs/op (before: %.0f ns/op, %d allocs/op)",
			hb.name, entry.After.NsPerOp, entry.After.AllocsPerOp,
			entry.Before.NsPerOp, entry.Before.AllocsPerOp)
		out.Entries = append(out.Entries, entry)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hotpathBenchPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote " + hotpathBenchPath)
}
