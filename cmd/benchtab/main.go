// Command benchtab regenerates every table and figure of the paper's
// evaluation section as text, in the order they appear in the paper.
//
// Usage:
//
//	benchtab [-scale small|default|full] [-seed N] [-workers N] [-alpha-sweep]
//	         [-gt-only] [-policy FILE] [-scenario SPEC.json] [-telemetry]
//	         [-pprof ADDR]
//
// The default scale matches EXPERIMENTS.md (300 taxis, 75 regions); -scale
// full runs the paper's 20,130-taxi fleet and takes hours.
//
// -scenario conditions the gt-only run on a fault schedule, or (in full
// mode) appends a scenario-delta table re-evaluating every trained method
// under it. -telemetry collects fleet-wide counters (dumped to stderr every
// 30s and on exit); it never changes results. -pprof serves
// net/http/pprof for live profiling.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"time"

	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run() error {
	scale := flag.String("scale", "default", "experiment scale: small, default, or full")
	seed := flag.Int64("seed", 42, "master random seed")
	sweep := flag.Bool("alpha-sweep", true, "run the Table IV alpha sweep (adds six training runs)")
	gtOnly := flag.Bool("gt-only", false, "only run ground truth and print the data-driven findings (Figs. 3-8)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines for training and evaluation; any value produces identical output")
	policyPath := flag.String("policy", "",
		"warm-start FairMove from a saved checkpoint instead of training it (see fairmove train -save-policy)")
	scenarioPath := flag.String("scenario", "",
		"JSON scenario spec: conditions the gt-only run, or adds a scenario-delta table to the full report")
	telemetryOn := flag.Bool("telemetry", false,
		"collect fleet-wide metrics; dumped to stderr every 30s and on exit (never changes results)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	var sc report.Scale
	switch *scale {
	case "small":
		sc = report.ScaleSmall
	case "default":
		sc = report.ScaleDefault
	case "full":
		sc = report.ScaleFull
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	cfg := report.DefaultConfig(*seed, sc)
	cfg.Workers = *workers
	cfg.PolicyPath = *policyPath

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", *pprofAddr)
	}
	var reg *telemetry.Registry
	if *telemetryOn {
		reg = telemetry.NewRegistry()
		cfg = cfg.WithTelemetry(reg)
		parallel.SetTelemetry(reg)
		stop := reg.DumpEvery(30*time.Second, os.Stderr)
		defer func() {
			stop()
			parallel.SetTelemetry(nil)
			fmt.Fprint(os.Stderr, "--- final telemetry ---\n"+reg.Snapshot().Text())
		}()
	}
	var spec *scenario.Spec
	if *scenarioPath != "" {
		var err error
		if spec, err = scenario.Load(*scenarioPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scenario %q: %d events\n", spec.Name, len(spec.Events))
	}

	start := time.Now()
	if *gtOnly {
		cfg.Scenario = spec
		b, err := report.RunGTOnly(cfg)
		if err != nil {
			return err
		}
		fmt.Println(b.Fig3())
		fmt.Println(b.Fig4())
		fmt.Println(b.Fig5())
		fmt.Println(b.Fig6())
		fmt.Println(b.Fig7())
		fmt.Println(b.Fig8())
		if s := b.FormatTelemetry(); s != "" {
			fmt.Println(s)
		}
		fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Second))
		return nil
	}

	var alphas []float64
	if *sweep {
		alphas = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	}
	b, err := report.RunFull(cfg, alphas)
	if err != nil {
		return err
	}
	fmt.Println(b.FormatAll())
	if spec != nil {
		if err := b.RunScenarios([]*scenario.Spec{spec}); err != nil {
			return err
		}
		fmt.Println(b.FormatScenarioDeltas())
	}
	if s := b.FormatTelemetry(); s != "" {
		fmt.Println(s)
	}
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Second))
	return nil
}
