// Command benchtab regenerates every table and figure of the paper's
// evaluation section as text, in the order they appear in the paper.
//
// Usage:
//
//	benchtab [-scale small|default|full] [-seed N] [-workers N] [-alpha-sweep] [-gt-only]
//
// The default scale matches EXPERIMENTS.md (300 taxis, 75 regions); -scale
// full runs the paper's 20,130-taxi fleet and takes hours.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/report"
)

func main() {
	scale := flag.String("scale", "default", "experiment scale: small, default, or full")
	seed := flag.Int64("seed", 42, "master random seed")
	sweep := flag.Bool("alpha-sweep", true, "run the Table IV alpha sweep (adds six training runs)")
	gtOnly := flag.Bool("gt-only", false, "only run ground truth and print the data-driven findings (Figs. 3-8)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines for training and evaluation; any value produces identical output")
	flag.Parse()

	var sc report.Scale
	switch *scale {
	case "small":
		sc = report.ScaleSmall
	case "default":
		sc = report.ScaleDefault
	case "full":
		sc = report.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "benchtab: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	cfg := report.DefaultConfig(*seed, sc)
	cfg.Workers = *workers

	start := time.Now()
	if *gtOnly {
		b, err := report.RunGTOnly(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
		fmt.Println(b.Fig3())
		fmt.Println(b.Fig4())
		fmt.Println(b.Fig5())
		fmt.Println(b.Fig6())
		fmt.Println(b.Fig7())
		fmt.Println(b.Fig8())
		fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Second))
		return
	}

	var alphas []float64
	if *sweep {
		alphas = []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	}
	b, err := report.RunFull(cfg, alphas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
	fmt.Println(b.FormatAll())
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Second))
}
