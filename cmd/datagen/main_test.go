package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestRunWritesReadableDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 9, 1, 60, 30, 8); err != nil {
		t.Fatal(err)
	}

	gpsF, err := os.Open(filepath.Join(dir, "gps.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer gpsF.Close()
	gps, err := trace.ReadGPS(gpsF)
	if err != nil {
		t.Fatal(err)
	}
	// One fix per taxi per slot: 60 taxis × 144 slots.
	if len(gps) != 60*144 {
		t.Fatalf("GPS rows = %d, want %d", len(gps), 60*144)
	}
	occupied := 0
	for _, r := range gps {
		if r.VehicleID < 0 || r.VehicleID >= 60 {
			t.Fatalf("invalid vehicle id %d", r.VehicleID)
		}
		if r.Occupied {
			occupied++
		}
	}
	if occupied == 0 {
		t.Fatal("no occupied GPS fixes — trips missing from the stream")
	}

	txF, err := os.Open(filepath.Join(dir, "transactions.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer txF.Close()
	txs, err := trace.ReadTransactions(txF)
	if err != nil {
		t.Fatal(err)
	}
	if len(txs) == 0 {
		t.Fatal("no transactions")
	}
	for _, tx := range txs {
		if tx.DropoffMin <= tx.PickupMin {
			t.Fatalf("non-positive trip duration: %+v", tx)
		}
		if tx.FareCNY <= 0 || tx.OperatingKm <= 0 {
			t.Fatalf("degenerate transaction: %+v", tx)
		}
	}

	chF, err := os.Open(filepath.Join(dir, "charging.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer chF.Close()
	evs, err := trace.ReadChargingEvents(chF)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range evs {
		if ev.StationID < 0 || ev.StationID >= 8 {
			t.Fatalf("invalid station in charging event: %+v", ev)
		}
		if ev.ChargeMin() <= 0 {
			t.Fatalf("non-positive charge duration: %+v", ev)
		}
	}

	stF, err := os.Open(filepath.Join(dir, "stations.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer stF.Close()
	metas, err := trace.ReadStationMeta(stF)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 8 {
		t.Fatalf("station metadata rows = %d, want 8", len(metas))
	}
}

func TestRunRejectsBadCity(t *testing.T) {
	if err := run(t.TempDir(), 1, 1, 0, 30, 8); err == nil {
		t.Fatal("zero fleet accepted")
	}
}
