package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	fairmove "repro"
	"repro/internal/serve"
)

// runStream implements `datagen stream`: instead of writing the Table I
// datasets to CSV files, it records the same ground-truth event stream in
// the serve ingest schema (NDJSON GPS fixes and trip requests) and either
// writes it to stdout or replays it into a running `fairmove serve` at a
// target event rate. The feed is deterministic in (seed, fleet): streaming
// the same seed twice produces byte-identical event batches, which is what
// the serve equivalence tests key on.
func runStream(args []string) error {
	fs := flag.NewFlagSet("stream", flag.ExitOnError)
	url := fs.String("url", "", "base URL of a running `fairmove serve` (empty: NDJSON to stdout)")
	seed := fs.Int64("seed", 42, "master random seed; must match the server's -seed for its clock to line up")
	fleet := fs.Int("fleet", 300, "fleet size; must match the server's -fleet")
	slots := fs.Int("slots", 0, "slots of events to stream (0 = the full evaluation horizon)")
	rps := fs.Float64("rps", 0, "target events per second (0 = as fast as the server admits)")
	batch := fs.Int("batch", 256, "events per POST /ingest batch")
	digest := fs.Bool("digest", false, "after streaming, fetch and print the server's decision digest")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Build the exact city and evaluation options the server's -seed/-fleet
	// resolve to, so recorded timestamps sweep the server's horizon.
	cfg := fairmove.DefaultConfig(*seed)
	cfg.Fleet = *fleet
	sys, err := fairmove.NewSystem(cfg)
	if err != nil {
		return err
	}
	events := serve.RecordFeed(sys.City(), sys.EvalOptions(), sys.EvalSeed(), *slots)
	if *url == "" {
		body, err := serve.EncodeBatch(events)
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(body)
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	client := &serve.Client{URL: *url, BatchSize: *batch}
	start := time.Now()
	st, err := client.Stream(ctx, events, *rps)
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	rate := float64(st.Events) / st.Elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "datagen stream: %d events in %d batches, %d backpressure retries, %.0f ev/s, %s\n",
		st.Events, st.Batches, st.Rejected, rate, time.Since(start).Round(time.Millisecond))
	if *digest {
		slots, decisions, dg, err := client.Digest(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("slots=%d decisions=%d digest=%s\n", slots, decisions, dg)
	}
	return nil
}
