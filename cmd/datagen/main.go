// Command datagen generates the synthetic equivalents of the paper's five
// Shenzhen datasets (Section II, Table I) by running the ground-truth
// driver behavior over the synthetic city and recording the streams:
//
//	gps.csv          — per-slot vehicle positions with passenger indicator
//	transactions.csv — served trips with fares and cruise distances
//	charging.csv     — charging events with idle/charge decomposition
//	stations.csv     — charging-station metadata
//
// Usage:
//
//	datagen [-out DIR] [-seed N] [-days N] [-fleet N] [-regions N] [-stations N]
//	datagen stream [-url URL] [-seed N] [-fleet N] [-slots N] [-rps R] [-batch N] [-digest]
//
// `datagen stream` records the same ground-truth behavior as NDJSON ingest
// events (the online analogue of the CSV datasets) and either writes them to
// stdout or replays them into a running `fairmove serve` at -rps events per
// second, honoring the service's 429 backpressure protocol.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/geo"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stream" {
		if err := runStream(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		return
	}
	out := flag.String("out", "dataset", "output directory")
	seed := flag.Int64("seed", 42, "master random seed")
	days := flag.Int("days", 1, "days of operation to record")
	fleet := flag.Int("fleet", 300, "fleet size")
	regions := flag.Int("regions", 75, "region count")
	stations := flag.Int("stations", 18, "charging station count")
	flag.Parse()

	if err := run(*out, *seed, *days, *fleet, *regions, *stations); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, days, fleet, regions, stations int) error {
	city, err := synth.Build(synth.Config{
		Seed: seed, Regions: regions, Stations: stations, Fleet: fleet,
		TripsPerDay: 15 * fleet, SlotMinutes: 10,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	gpsF, err := os.Create(filepath.Join(out, "gps.csv"))
	if err != nil {
		return err
	}
	defer gpsF.Close()
	gps, err := trace.NewGPSWriter(gpsF)
	if err != nil {
		return err
	}

	env := sim.New(city, sim.DefaultOptions(days), seed)
	gt := policy.NewGroundTruth()
	gt.BeginEpisode(seed)
	jitter := rng.SplitStable(seed, "gps-jitter")

	var gpsRows int
	for !env.Done() {
		vacant := env.VacantTaxis()
		env.Step(gt.Act(env, vacant))
		// One GPS fix per taxi per slot: region centroid with jitter, the
		// occupied flag from the state machine, speed from the time of day.
		now := env.Now()
		hour := (now / 60) % 24
		for id := 0; id < fleet; id++ {
			c := city.Partition.Region(env.TaxiRegion(id)).Centroid
			state := env.TaxiState(id)
			speed := 0.0
			if state == sim.Serving || state == sim.Relocating || state == sim.ToStation {
				speed = 30
			} else if state == sim.Cruising {
				speed = 12
			}
			rec := trace.GPSRecord{
				VehicleID: id,
				TimeMin:   now,
				Loc: geo.Point{
					Lng: c.Lng + jitter.Uniform(-0.003, 0.003),
					Lat: c.Lat + jitter.Uniform(-0.003, 0.003),
				},
				DirDeg:   jitter.Uniform(0, 360),
				SpeedKmh: speed,
				Occupied: state == sim.Serving,
			}
			if err := gps.Write(rec); err != nil {
				return err
			}
			gpsRows++
		}
		_ = hour
	}
	if err := gps.Flush(); err != nil {
		return err
	}
	res := env.Results()

	// Transactions.
	txF, err := os.Create(filepath.Join(out, "transactions.csv"))
	if err != nil {
		return err
	}
	defer txF.Close()
	tx, err := trace.NewTransactionWriter(txF)
	if err != nil {
		return err
	}
	for _, ts := range res.TripStats {
		err := tx.Write(trace.Transaction{
			VehicleID:    ts.Taxi,
			PickupMin:    ts.PickupMin,
			DropoffMin:   ts.PickupMin + int(ts.DurMin+0.5),
			Pickup:       ts.Pickup,
			Dropoff:      ts.Dropoff,
			OperatingKm:  ts.DistanceKm,
			CruisingKm:   ts.CruiseMin / 60 * 12,
			FareCNY:      ts.FareCNY,
			PickupRegion: ts.Region,
			DropRegion:   ts.DestRegion,
		})
		if err != nil {
			return err
		}
	}
	if err := tx.Flush(); err != nil {
		return err
	}

	// Charging events.
	chF, err := os.Create(filepath.Join(out, "charging.csv"))
	if err != nil {
		return err
	}
	defer chF.Close()
	ch, err := trace.NewChargingWriter(chF)
	if err != nil {
		return err
	}
	for _, ev := range res.ChargeStats {
		if err := ch.Write(ev); err != nil {
			return err
		}
	}
	if err := ch.Flush(); err != nil {
		return err
	}

	// Station metadata.
	stF, err := os.Create(filepath.Join(out, "stations.csv"))
	if err != nil {
		return err
	}
	defer stF.Close()
	metas := make([]trace.StationMeta, city.Stations.Len())
	for i := 0; i < city.Stations.Len(); i++ {
		st := city.Stations.Station(i)
		metas[i] = trace.StationMeta{StationID: st.ID, Name: st.Name, Loc: st.Loc, Points: st.Points}
	}
	if err := trace.WriteStationMeta(stF, metas); err != nil {
		return err
	}

	fmt.Printf("dataset written to %s: %d GPS rows, %d transactions, %d charging events, %d stations\n",
		out, gpsRows, len(res.TripStats), len(res.ChargeStats), city.Stations.Len())
	return nil
}
