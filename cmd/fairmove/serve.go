package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	fairmove "repro"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// cmdServe runs the online dispatch service: it loads (or defaults to) a
// policy, builds the evaluation-protocol environment for the same seed, and
// serves displacement decisions over HTTP while ingested GPS/request events
// advance the slot clock. SIGINT/SIGTERM trigger a graceful drain: queued
// events are absorbed, in-flight slots finish, the final decision digest is
// printed, and only then does the process exit.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	seed, fleet, alpha := commonFlags(fs)
	method := fs.String("method", "GT", "strategy to serve: GT, SD2, or FairMove (FairMove needs -load-policy)")
	loadPolicy := fs.String("load-policy", "", "FairMove checkpoint file to serve (and the hot-swap source format)")
	scenarioPath := fs.String("scenario", "", "JSON scenario spec to condition the served horizon on")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port; the chosen address is printed)")
	queueCap := fs.Int("queue-cap", serve.DefaultQueueCap, "ingest queue capacity in events; full queue answers 429")
	maxBatch := fs.Int("max-batch", serve.DefaultMaxBatch, "largest accepted ingest batch in events")
	history := fs.Int("history", serve.DefaultHistory, "decision slots retained for GET /decisions")
	slotEvery := fs.Duration("slot-every", 0, "advance one slot per wall-clock interval (0 = event-watermark/step-driven only)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on graceful drain at shutdown")
	telemetryOn, pprofAddr := observeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, finish := observe(*telemetryOn, *pprofAddr)
	defer finish()

	s, err := newSystem(*seed, *fleet, *alpha, 0, 0)
	if err != nil {
		return err
	}
	s.SetTelemetry(reg)
	if err := applyScenario(s, *scenarioPath); err != nil {
		return err
	}
	if *loadPolicy != "" {
		if err := s.LoadPolicy(*loadPolicy); err != nil {
			return err
		}
	}
	m := fairmove.Method(*method)
	switch m {
	case fairmove.GT, fairmove.SD2:
	case fairmove.FairMove:
		if *loadPolicy == "" {
			return fmt.Errorf("serve -method FairMove needs -load-policy (train once, serve many)")
		}
	default:
		return fmt.Errorf("serve supports GT, SD2, and FairMove, not %q", m)
	}
	pol, err := s.PolicyFor(m)
	if err != nil {
		return err
	}

	srvReg := reg
	if srvReg == nil {
		// /metrics should work even when -telemetry (the stderr dump) is off.
		srvReg = telemetry.NewRegistry()
	}
	srv, err := serve.New(serve.Config{
		Env:       s.EvalEnv(),
		Policy:    pol,
		Seed:      s.EvalSeed(),
		QueueCap:  *queueCap,
		MaxBatch:  *maxBatch,
		History:   *history,
		SlotEvery: *slotEvery,
		Reload:    s.LoadPolicyInto,
		Telemetry: srvReg,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("fairmove serve: listening on http://%s (policy %s, seed %d)\n",
		ln.Addr(), pol.Name(), *seed)
	srv.Start()
	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	select {
	case err := <-errCh:
		return err
	case sg := <-sigCh:
		fmt.Printf("fairmove serve: %v: draining\n", sg)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	slots, decisions, digest := srv.DigestState()
	fmt.Printf("fairmove serve: drained cleanly: %d slots, %d decisions, digest %s\n",
		slots, decisions, digest)
	return nil
}
