// Command fairmove trains and evaluates the FairMove displacement system.
//
// Subcommands:
//
//	fairmove train   [-seed N] [-fleet N] [-alpha A] [-episodes N] [-pretrain N]
//	                 [-checkpoint-dir DIR] [-checkpoint-every N] [-resume]
//	                 [-save-policy FILE] [-model FILE]
//	fairmove eval    [-seed N] [-fleet N] [-method M] [-load-policy FILE] [-scenario SPEC.json] [-json]
//	fairmove compare [-seed N] [-fleet N] [-alpha A] [-load-policy FILE] [-scenario SPEC.json] [-json]
//	fairmove serve   [-seed N] [-fleet N] [-method M] [-load-policy FILE] [-scenario SPEC.json]
//	                 [-addr HOST:PORT] [-queue-cap N] [-slot-every D] [-drain-timeout D]
//
// `train` trains CMA2C and optionally saves the networks; `eval` evaluates
// one strategy (loading a saved policy for FairMove if given); `compare`
// runs all six strategies on identical demand and prints the paper's
// headline metrics; `serve` runs the online dispatch service (HTTP ingest of
// GPS/request events, per-slot displacement decisions, atomic policy hot
// swap via POST /policy/reload, graceful drain on SIGTERM — see DESIGN.md
// §10 and internal/serve).
//
// -checkpoint-dir enables crash-safe checkpoints at episode boundaries;
// a killed run resumes byte-identically by re-running the same command with
// -resume added. -save-policy / -load-policy round-trip a finished policy
// through the same versioned, digest-protected format.
//
// -scenario conditions evaluation on a perturbation spec (station outages,
// demand surges, GPS dropouts, …; see internal/scenario): every method then
// scores under the identical fault schedule. Training always runs clean.
//
// Every subcommand also accepts -telemetry (collect fleet-wide counters,
// dumped to stderr every 30s and on exit; never changes results) and
// -pprof ADDR (serve net/http/pprof for live profiling).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"time"

	fairmove "repro"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fairmove:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: fairmove <train|eval|compare|serve> [flags]")
}

func commonFlags(fs *flag.FlagSet) (*int64, *int, *float64) {
	seed := fs.Int64("seed", 42, "master random seed")
	fleet := fs.Int("fleet", 300, "fleet size (regions/stations scale with it)")
	alpha := fs.Float64("alpha", 0.6, "efficiency/fairness weight α")
	return seed, fleet, alpha
}

// observeFlags registers the observability flags shared by every subcommand.
func observeFlags(fs *flag.FlagSet) (*bool, *string) {
	telemetryOn := fs.Bool("telemetry", false,
		"collect fleet-wide metrics; dumped to stderr every 30s and on exit (never changes results)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	return telemetryOn, pprofAddr
}

// observe starts pprof and telemetry as requested. The returned registry is
// nil when telemetry is off; the finish func stops the periodic dump and
// prints the final snapshot — call it via defer (the subcommands return
// errors to main rather than os.Exit-ing, so defers always run).
func observe(telemetryOn bool, pprofAddr string) (*telemetry.Registry, func()) {
	if pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "fairmove: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on http://%s/debug/pprof/\n", pprofAddr)
	}
	if !telemetryOn {
		return nil, func() {}
	}
	reg := telemetry.NewRegistry()
	parallel.SetTelemetry(reg)
	stop := reg.DumpEvery(30*time.Second, os.Stderr)
	return reg, func() {
		stop()
		parallel.SetTelemetry(nil)
		fmt.Fprint(os.Stderr, "--- final telemetry ---\n"+reg.Snapshot().Text())
	}
}

func newSystem(seed int64, fleet int, alpha float64, episodes, pretrain int) (*fairmove.System, error) {
	cfg := fairmove.DefaultConfig(seed)
	cfg.Fleet = fleet
	cfg.Alpha = alpha
	if episodes > 0 {
		cfg.TrainEpisodes = episodes
	}
	if pretrain > 0 {
		cfg.PretrainEpisodes = pretrain
	}
	return fairmove.NewSystem(cfg)
}

// applyScenario loads a spec file and installs it on the system.
func applyScenario(s *fairmove.System, path string) error {
	if path == "" {
		return nil
	}
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	if err := s.SetScenario(spec); err != nil {
		return err
	}
	fmt.Printf("scenario %q: %d events\n", spec.Name, len(spec.Events))
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	seed, fleet, alpha := commonFlags(fs)
	episodes := fs.Int("episodes", 6, "total fine-tuning episodes (a resumed run continues toward the same total)")
	pretrain := fs.Int("pretrain", 0, "demonstration (warm-start) episodes; 0 = default")
	model := fs.String("model", "", "path to save the trained networks (legacy gob format)")
	ckptDir := fs.String("checkpoint-dir", "", "directory for crash-safe training checkpoints")
	ckptEvery := fs.Int("checkpoint-every", 0, "checkpoint cadence in episodes; 0 = only at phase ends")
	ckptKeep := fs.Int("checkpoint-keep", 0, "checkpoints to retain in -checkpoint-dir (0 = default 3)")
	resume := fs.Bool("resume", false, "resume from the newest checkpoint in -checkpoint-dir")
	savePolicy := fs.String("save-policy", "", "write the trained policy as a checkpoint file for later -load-policy")
	telemetryOn, pprofAddr := observeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir")
	}
	reg, finish := observe(*telemetryOn, *pprofAddr)
	defer finish()
	s, err := newSystem(*seed, *fleet, *alpha, *episodes, *pretrain)
	if err != nil {
		return err
	}
	s.SetTelemetry(reg)
	rep, err := s.TrainWithOptions(fairmove.TrainOptions{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		CheckpointKeep:  *ckptKeep,
		Resume:          *resume,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trained %d episodes, %d transitions\n", rep.Episodes, rep.Transitions)
	for i, r := range rep.MeanReward {
		fmt.Printf("  episode %d: mean reward %.3f critic loss %.5f\n", i+1, r, rep.CriticLoss[i])
	}
	if *savePolicy != "" {
		if err := s.SavePolicy(*savePolicy); err != nil {
			return err
		}
		fmt.Printf("policy saved to %s\n", *savePolicy)
	}
	if *model != "" {
		f, err := os.Create(*model)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.SaveModel(f); err != nil {
			return err
		}
		fmt.Printf("model saved to %s\n", *model)
	}
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	seed, fleet, alpha := commonFlags(fs)
	method := fs.String("method", "FairMove", "strategy: GT, SD2, TQL, DQN, TBA, or FairMove")
	model := fs.String("model", "", "saved FairMove model to load instead of training (legacy gob format)")
	loadPolicy := fs.String("load-policy", "", "FairMove checkpoint file to load instead of training")
	scenarioPath := fs.String("scenario", "", "JSON scenario spec to condition evaluation on")
	asJSON := fs.Bool("json", false, "emit the report as JSON (NaN metrics encode as null)")
	telemetryOn, pprofAddr := observeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, finish := observe(*telemetryOn, *pprofAddr)
	defer finish()
	s, err := newSystem(*seed, *fleet, *alpha, 0, 0)
	if err != nil {
		return err
	}
	s.SetTelemetry(reg)
	if err := applyScenario(s, *scenarioPath); err != nil {
		return err
	}
	if *loadPolicy != "" {
		if err := s.LoadPolicy(*loadPolicy); err != nil {
			return err
		}
	}
	if *model != "" {
		f, err := os.Open(*model)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := s.LoadModel(f); err != nil {
			return err
		}
	}
	rep, err := s.Evaluate(fairmove.Method(*method))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("%s: meanPE=%.2f medianPE=%.2f PF=%.2f gini=%.3f\n",
		rep.Method, rep.MeanPE, rep.MedianPE, rep.PF, rep.GiniPE)
	fmt.Printf("  F_spatial=%.3f giniDSR=%.3f floorDSR=%s\n",
		rep.FSpatial, rep.GiniDSR, metrics.FormatRatio(rep.FloorDSR))
	fmt.Printf("  served=%d unserved=%d profit=%.0f CNY charges=%d\n",
		rep.ServedRequests, rep.UnservedRequests, rep.FleetProfitCNY, rep.ChargeEvents)
	fmt.Printf("  median cruise=%.1f min, median idle=%.1f min\n",
		rep.MedianCruiseMin, rep.MedianIdleMin)
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	seed, fleet, alpha := commonFlags(fs)
	scenarioPath := fs.String("scenario", "", "JSON scenario spec to condition evaluation on")
	loadPolicy := fs.String("load-policy", "", "FairMove checkpoint file to load instead of training")
	asJSON := fs.Bool("json", false, "emit the comparison table as JSON (NaN metrics encode as null)")
	telemetryOn, pprofAddr := observeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg, finish := observe(*telemetryOn, *pprofAddr)
	defer finish()
	s, err := newSystem(*seed, *fleet, *alpha, 0, 0)
	if err != nil {
		return err
	}
	s.SetTelemetry(reg)
	if err := applyScenario(s, *scenarioPath); err != nil {
		return err
	}
	if *loadPolicy != "" {
		if err := s.LoadPolicy(*loadPolicy); err != nil {
			return err
		}
	}
	cmps, err := s.CompareAll()
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(cmps)
	}
	fmt.Printf("%-10s %8s %8s %8s %8s %8s %9s %9s %8s\n", "method", "PRCT", "PRIT", "PIPE", "PIPF", "meanPE", "PF", "F_spatial", "floorDSR")
	for _, c := range cmps {
		fmt.Printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.2f %9.2f %9.3f %8s\n",
			c.Method, c.PRCT, c.PRIT, c.PIPE, c.PIPF, c.MeanPE, c.PF, c.FSpatial, metrics.FormatRatio(c.FloorDSR))
	}
	return nil
}
