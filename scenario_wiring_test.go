package fairmove

import (
	"testing"

	"repro/internal/scenario"
)

// microScenario is a spec valid for microConfig's inventory (12 regions,
// 4 stations): one station dark all day plus a morning citywide surge.
func microScenario(t *testing.T) *scenario.Spec {
	t.Helper()
	spec, err := scenario.NewBuilder("micro-stress").
		StationOutage(1, 0, 24*60).
		DemandSurge(-1, 7*60, 10*60, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// CompareAll under a scenario still produces one row per method, in
// Methods() order — every baseline scored under the identical fault
// schedule — and the scenario actually moves the numbers.
func TestCompareAllUnderScenario(t *testing.T) {
	s, err := NewSystem(microConfig(11, 0))
	if err != nil {
		t.Fatal(err)
	}
	cleanGT, err := s.Evaluate(GT)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetScenario(microScenario(t)); err != nil {
		t.Fatal(err)
	}
	cmps, err := s.CompareAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != len(Methods()) {
		t.Fatalf("got %d rows, want %d", len(cmps), len(Methods()))
	}
	for i, m := range Methods() {
		if cmps[i].Method != m {
			t.Fatalf("row %d is %s, want %s", i, cmps[i].Method, m)
		}
	}
	// The surge changes the demand realization, so GT's served count must
	// differ from the clean run (policies are cached — only the env changed).
	scenGT := cmps[0]
	if scenGT.ServedRequests == cleanGT.ServedRequests &&
		scenGT.FleetProfitCNY == cleanGT.FleetProfitCNY {
		t.Fatal("scenario evaluation is indistinguishable from the clean run")
	}

	// Clearing the scenario restores clean evaluation exactly.
	if err := s.SetScenario(nil); err != nil {
		t.Fatal(err)
	}
	again, err := s.Evaluate(GT)
	if err != nil {
		t.Fatal(err)
	}
	if again != cleanGT {
		t.Fatalf("clean evaluation drifted after scenario round-trip:\n%+v\n%+v", again, cleanGT)
	}
}

// SetScenario validates against the system's city up front.
func TestSetScenarioRejectsOutOfRange(t *testing.T) {
	s, err := NewSystem(microConfig(12, 0))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.NewBuilder("bad").StationOutage(99, 0, 10).Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetScenario(spec); err == nil {
		t.Fatal("SetScenario accepted a station the city does not have")
	}
	if s.Scenario() != nil {
		t.Fatal("failed SetScenario left a scenario installed")
	}
}

// Scenario-conditioned evaluation stays deterministic: two systems with the
// same seed and the same spec report identically.
func TestScenarioEvaluationDeterministic(t *testing.T) {
	run := func() EvalReport {
		s, err := NewSystem(microConfig(13, 0))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetScenario(microScenario(t)); err != nil {
			t.Fatal(err)
		}
		rep, err := s.Evaluate(GT)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("scenario evaluation not reproducible:\n%+v\n%+v", a, b)
	}
}
