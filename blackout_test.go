package fairmove

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// A total demand blackout — every region scaled to zero for the whole
// horizon — is the one evaluation where the accessibility floor has no
// signal and is deliberately NaN. The reports must survive it: text
// renders "n/a" (covered in internal/metrics) and JSON encodes null,
// because encoding/json refuses non-finite floats and would otherwise
// fail the entire report.
func TestBlackoutScenarioReportMarshals(t *testing.T) {
	s, err := NewSystem(microConfig(17, 0))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := scenario.NewBuilder("total-blackout").
		DemandScale(-1, 0, 10*24*60, 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetScenario(spec); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Evaluate(GT)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServedRequests != 0 {
		t.Fatalf("blackout run served %d requests", rep.ServedRequests)
	}
	if !math.IsNaN(rep.FloorDSR) {
		t.Fatalf("blackout FloorDSR = %v, want NaN", rep.FloorDSR)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("blackout EvalReport does not marshal: %v", err)
	}
	if !strings.Contains(string(data), `"FloorDSR":null`) {
		t.Fatalf("blackout JSON = %s, want FloorDSR null", data)
	}
	if strings.Contains(string(data), "NaN") {
		t.Fatalf("blackout JSON leaks NaN: %s", data)
	}
}

// Comparison's custom marshaler must keep the flat shape of the default
// encoding: EvalReport fields inline next to the four versus-GT
// percentages, with a NaN floor as null.
func TestComparisonMarshalKeepsShape(t *testing.T) {
	c := Comparison{
		EvalReport: EvalReport{Method: SD2, MeanPE: 31.5, FloorDSR: math.NaN()},
		PRCT:       12.5,
		PIPF:       -3,
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("comparison JSON is not one flat object: %v\n%s", err, data)
	}
	for _, key := range []string{"Method", "MeanPE", "FloorDSR", "PRCT", "PRIT", "PIPE", "PIPF"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("comparison JSON lacks %q: %s", key, data)
		}
	}
	if m["FloorDSR"] != nil {
		t.Fatalf("FloorDSR = %v, want null", m["FloorDSR"])
	}
	if m["PRCT"].(float64) != 12.5 {
		t.Fatalf("PRCT = %v, want 12.5", m["PRCT"])
	}
}
