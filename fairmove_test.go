package fairmove

import (
	"bytes"
	"math"
	"testing"
)

// tinyConfig keeps facade tests fast.
func tinyConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Regions:       60,
		Stations:      12,
		Fleet:         60,
		SlotMinutes:   10,
		Days:          1,
		Alpha:         0.6,
		TrainEpisodes: 1,
		TrainDays:     1,
	}
}

func TestNewSystemDefaults(t *testing.T) {
	s, err := NewSystem(Config{Seed: 1, Fleet: 50, Regions: 60, Stations: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.TripsPerDay != 15*50 {
		t.Errorf("TripsPerDay default = %d, want %d", cfg.TripsPerDay, 15*50)
	}
	if cfg.Alpha != 0.6 || cfg.Days != 2 || cfg.SlotMinutes != 10 {
		t.Errorf("defaults wrong: %+v", cfg)
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	if _, err := NewSystem(Config{Seed: 1, Regions: 2, Stations: 1, Fleet: 1}); err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestTrainAndEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("full training pipeline; determinism_test.go covers the short tier")
	}
	s, err := NewSystem(tinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Train()
	if rep.Episodes != 1 || len(rep.MeanReward) != 1 {
		t.Fatalf("train report wrong: %+v", rep)
	}
	if rep.Transitions == 0 {
		t.Fatal("no training transitions")
	}
	ev, err := s.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Method != FairMove || ev.ServedRequests == 0 {
		t.Fatalf("evaluation report wrong: %+v", ev)
	}
	if math.IsNaN(ev.MeanPE) {
		t.Fatal("NaN PE")
	}
}

func TestEvaluateAllMethods(t *testing.T) {
	if testing.Short() {
		t.Skip("full training pipeline; determinism_test.go covers the short tier")
	}
	s, err := NewSystem(tinyConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		ev, err := s.Evaluate(m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if ev.ServedRequests == 0 {
			t.Fatalf("%s served nothing", m)
		}
	}
	if _, err := s.Evaluate(Method("bogus")); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestCompareAllIdenticalDemand(t *testing.T) {
	if testing.Short() {
		t.Skip("full training pipeline; determinism_test.go covers the short tier")
	}
	s, err := NewSystem(tinyConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	cmps, err := s.CompareAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != len(Methods()) {
		t.Fatalf("%d comparisons, want %d", len(cmps), len(Methods()))
	}
	// All methods consume the same demand stream. Requests straddling the
	// warmup boundary may be served before it under one policy but expire
	// after it under another, so totals match only within a small margin.
	total := cmps[0].ServedRequests + cmps[0].UnservedRequests
	for _, c := range cmps {
		got := c.ServedRequests + c.UnservedRequests
		diff := got - total
		if diff < 0 {
			diff = -diff
		}
		if diff > total/50+5 {
			t.Fatalf("%s saw %d requests, others %d — demand not identical", c.Method, got, total)
		}
	}
	// GT compared to itself must be the zero point of every percentage.
	g := cmps[0]
	if g.Method != GT {
		t.Fatal("first comparison is not GT")
	}
	if g.PRCT != 0 || g.PRIT != 0 || g.PIPE != 0 || g.PIPF != 0 {
		t.Fatalf("GT vs GT percentages nonzero: %+v", g)
	}
}

func TestAlphaSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full training pipeline; determinism_test.go covers the short tier")
	}
	s, err := NewSystem(tinyConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	alphas, rewards, err := s.AlphaSweep([]float64{1.0, 0.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(alphas) != 2 || len(rewards) != 2 {
		t.Fatalf("sweep shape wrong: %v %v", alphas, rewards)
	}
	if alphas[0] != 0 || alphas[1] != 1 {
		t.Fatalf("alphas not sorted: %v", alphas)
	}
	for _, r := range rewards {
		if math.IsNaN(r) {
			t.Fatal("NaN sweep reward")
		}
	}
}

func TestSaveLoadModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full training pipeline; determinism_test.go covers the short tier")
	}
	s, err := NewSystem(tinyConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	s.Train()
	var buf bytes.Buffer
	if err := s.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := NewSystem(tinyConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.LoadModel(&buf); err != nil {
		t.Fatal(err)
	}
	a, err := s.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s2.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanPE != b.MeanPE || a.ServedRequests != b.ServedRequests {
		t.Fatalf("loaded model evaluates differently: %+v vs %+v", a, b)
	}
	if err := s2.LoadModel(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage model accepted")
	}
}
