package fairmove

// Precision-drift guard for the float32 tensor backend. The nn rewrite
// changed arithmetic precision (float64 → float32 storage and kernels), so
// trained-policy trajectories legitimately diverge bit-for-bit from the old
// engine. What must NOT drift is the science: the end-to-end fairness and
// efficiency metrics of a trained FairMove run have to land within a narrow
// band of the float64 engine's pinned values. The pins below were measured
// on the last float64 commit (4f32e9b) with this exact configuration; the
// tolerances are deliberately tight — half-precision bugs, a broken
// activation, or a mis-scaled gradient all blow past them, while benign
// rounding drift does not.
//
// If a deliberate algorithmic change moves these metrics, re-pin the values
// and say why in the commit, exactly like a golden-fixture bump.

import (
	"math"
	"testing"
)

func TestPrecisionDriftFromFloat64Pins(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a policy; skipped in short mode")
	}
	const (
		pinMeanPE   = 22.56914073 // CNY/h, float64 engine, tinyConfig(2)
		pinPF       = 77.29231967
		pinFSpatial = 0.6500104235
		pinServed   = 433
	)
	s, err := NewSystem(tinyConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	s.Train()
	ev, err := s.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MeanPE=%.10g PF=%.10g FSpatial=%.10g served=%d", ev.MeanPE, ev.PF, ev.FSpatial, ev.ServedRequests)

	// Relative tolerances: the tiny fixture's metrics are noisy functions of
	// individual match decisions, so a handful of flipped decisions moves
	// them by a few percent — precision bugs move them by tens.
	relCheck := func(name string, got, pin, tol float64) {
		if rel := math.Abs(got-pin) / math.Abs(pin); rel > tol {
			t.Errorf("%s = %.8g drifted %.2f%% from float64 pin %.8g (tolerance %.0f%%)",
				name, got, 100*rel, pin, 100*tol)
		}
	}
	relCheck("MeanPE", ev.MeanPE, pinMeanPE, 0.10)
	relCheck("PF", ev.PF, pinPF, 0.10)
	relCheck("FSpatial", ev.FSpatial, pinFSpatial, 0.10)
	relCheck("ServedRequests", float64(ev.ServedRequests), pinServed, 0.10)
}
