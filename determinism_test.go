package fairmove

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// microConfig is deliberately smaller than tinyConfig: the worker-invariance
// tests below train every method twice (once per worker count), and they
// must stay fast enough to run un-skipped under `go test -short -race` —
// they ARE the race-detector coverage for the parallel runtime.
func microConfig(seed int64, workers int) Config {
	return Config{
		Seed:             seed,
		Regions:          12,
		Stations:         4,
		Fleet:            24,
		SlotMinutes:      10,
		Days:             1,
		Alpha:            0.6,
		PretrainEpisodes: 1,
		TrainEpisodes:    1,
		TrainDays:        1,
		Workers:          workers,
	}
}

// Determinism regression: the same seed must produce the same EvalReport,
// both when re-evaluating a trained system and when rebuilding the system
// from scratch.
func TestEvaluateDeterministic(t *testing.T) {
	s1, err := NewSystem(microConfig(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	// Same system: the cached policy must evaluate identically.
	r2, err := s1.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("re-evaluation diverged:\n%+v\n%+v", r1, r2)
	}
	// Fresh system, same seed: the full train-and-evaluate pipeline must
	// reproduce the report exactly.
	s2, err := NewSystem(microConfig(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := s2.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatalf("rebuilt system diverged:\n%+v\n%+v", r1, r3)
	}
}

// The tentpole's executable spec: CompareAll with one worker and with four
// workers must produce byte-identical reports for the same seed. Training
// and evaluation both run inside CompareAll, so this exercises the full
// parallel runtime — fan-out over methods, parallel demonstration rollouts,
// and batched network inference.
func TestCompareAllWorkerInvariance(t *testing.T) {
	run := func(workers int) []Comparison {
		s, err := NewSystem(microConfig(3, workers))
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.CompareAll()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(Methods()) {
		t.Fatalf("got %d comparisons, want %d", len(serial), len(Methods()))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("method %s: workers=1 and workers=4 reports differ:\n%+v\n%+v",
				serial[i].Method, serial[i], parallel[i])
		}
	}
}

// Telemetry is write-only, so enabling it must not perturb the byte-identity
// contract: CompareAll with telemetry on must match across worker counts, and
// the deterministic counter namespaces (sim.*, training prefixes) must also
// be identical — those counters are pure functions of the trajectory. The
// parallel.* namespace is scheduler-dependent by documented contract and is
// excluded, as are float histogram sums (accumulation order varies when
// concurrent evaluations share one registry).
func TestCompareAllWorkerInvarianceWithTelemetry(t *testing.T) {
	run := func(workers int) ([]Comparison, telemetry.Snapshot) {
		s, err := NewSystem(microConfig(3, workers))
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		s.SetTelemetry(reg)
		out, err := s.CompareAll()
		if err != nil {
			t.Fatal(err)
		}
		return out, reg.Snapshot()
	}
	serial, snap1 := run(1)
	parallel, snap4 := run(4)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("telemetry perturbed results for %s:\n%+v\n%+v",
				serial[i].Method, serial[i], parallel[i])
		}
	}
	c1, c4 := deterministicCounters(snap1), deterministicCounters(snap4)
	if !reflect.DeepEqual(c1, c4) {
		t.Fatalf("deterministic counters diverged across worker counts:\nworkers=1: %v\nworkers=4: %v", c1, c4)
	}
	// Sanity: the instrumentation actually fired.
	for _, name := range []string{"sim.slots", "sim.matches", "core.episodes", "dqn.transitions"} {
		if c1[name] == 0 {
			t.Errorf("counter %s never incremented", name)
		}
	}
	// And the results with telemetry match the plain run of the same seed.
	s, err := NewSystem(microConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.CompareAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, serial) {
		t.Fatalf("enabling telemetry changed the report:\nplain: %+v\ntelemetry: %+v", plain, serial)
	}
}

func deterministicCounters(s telemetry.Snapshot) map[string]int64 {
	out := make(map[string]int64, len(s.Counters))
	for k, v := range s.Counters {
		if !strings.HasPrefix(k, "parallel.") {
			out[k] = v
		}
	}
	return out
}

// AlphaSweep must likewise be invariant to the worker count.
func TestAlphaSweepWorkerInvariance(t *testing.T) {
	alphas := []float64{0.8, 0.2} // unsorted on purpose: output order is sorted
	run := func(workers int) ([]float64, []float64) {
		s, err := NewSystem(microConfig(5, workers))
		if err != nil {
			t.Fatal(err)
		}
		as, rs, err := s.AlphaSweep(alphas)
		if err != nil {
			t.Fatal(err)
		}
		return as, rs
	}
	a1, r1 := run(1)
	a4, r4 := run(4)
	if !reflect.DeepEqual(a1, []float64{0.2, 0.8}) {
		t.Fatalf("alphas not sorted: %v", a1)
	}
	if !reflect.DeepEqual(a1, a4) || !reflect.DeepEqual(r1, r4) {
		t.Fatalf("sweep diverged across worker counts:\nworkers=1: %v %v\nworkers=4: %v %v", a1, r1, a4, r4)
	}
}
