package fairmove

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// microConfig is deliberately smaller than tinyConfig: the worker-invariance
// tests below train every method twice (once per worker count), and they
// must stay fast enough to run un-skipped under `go test -short -race` —
// they ARE the race-detector coverage for the parallel runtime.
func microConfig(seed int64, workers int) Config {
	return Config{
		Seed:             seed,
		Regions:          12,
		Stations:         4,
		Fleet:            24,
		SlotMinutes:      10,
		Days:             1,
		Alpha:            0.6,
		PretrainEpisodes: 1,
		TrainEpisodes:    1,
		TrainDays:        1,
		Workers:          workers,
	}
}

// Determinism regression: the same seed must produce the same EvalReport,
// both when re-evaluating a trained system and when rebuilding the system
// from scratch.
func TestEvaluateDeterministic(t *testing.T) {
	s1, err := NewSystem(microConfig(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s1.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	// Same system: the cached policy must evaluate identically.
	r2, err := s1.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("re-evaluation diverged:\n%+v\n%+v", r1, r2)
	}
	// Fresh system, same seed: the full train-and-evaluate pipeline must
	// reproduce the report exactly.
	s2, err := NewSystem(microConfig(9, 0))
	if err != nil {
		t.Fatal(err)
	}
	r3, err := s2.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r3) {
		t.Fatalf("rebuilt system diverged:\n%+v\n%+v", r1, r3)
	}
}

// The tentpole's executable spec: CompareAll with one worker and with four
// workers must produce byte-identical reports for the same seed. Training
// and evaluation both run inside CompareAll, so this exercises the full
// parallel runtime — fan-out over methods, parallel demonstration rollouts,
// and batched network inference.
func TestCompareAllWorkerInvariance(t *testing.T) {
	run := func(workers int) []Comparison {
		s, err := NewSystem(microConfig(3, workers))
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.CompareAll()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	parallel := run(4)
	if len(serial) != len(Methods()) {
		t.Fatalf("got %d comparisons, want %d", len(serial), len(Methods()))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("method %s: workers=1 and workers=4 reports differ:\n%+v\n%+v",
				serial[i].Method, serial[i], parallel[i])
		}
	}
}

// Telemetry is write-only, so enabling it must not perturb the byte-identity
// contract: CompareAll with telemetry on must match across worker counts, and
// the deterministic counter namespaces (sim.*, training prefixes) must also
// be identical — those counters are pure functions of the trajectory. The
// parallel.* namespace is scheduler-dependent by documented contract and is
// excluded, as are float histogram sums (accumulation order varies when
// concurrent evaluations share one registry).
func TestCompareAllWorkerInvarianceWithTelemetry(t *testing.T) {
	run := func(workers int) ([]Comparison, telemetry.Snapshot) {
		s, err := NewSystem(microConfig(3, workers))
		if err != nil {
			t.Fatal(err)
		}
		reg := telemetry.NewRegistry()
		s.SetTelemetry(reg)
		out, err := s.CompareAll()
		if err != nil {
			t.Fatal(err)
		}
		return out, reg.Snapshot()
	}
	serial, snap1 := run(1)
	parallel, snap4 := run(4)
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("telemetry perturbed results for %s:\n%+v\n%+v",
				serial[i].Method, serial[i], parallel[i])
		}
	}
	c1, c4 := deterministicCounters(snap1), deterministicCounters(snap4)
	if !reflect.DeepEqual(c1, c4) {
		t.Fatalf("deterministic counters diverged across worker counts:\nworkers=1: %v\nworkers=4: %v", c1, c4)
	}
	// Sanity: the instrumentation actually fired.
	for _, name := range []string{"sim.slots", "sim.matches", "core.episodes", "dqn.transitions"} {
		if c1[name] == 0 {
			t.Errorf("counter %s never incremented", name)
		}
	}
	// And the results with telemetry match the plain run of the same seed.
	s, err := NewSystem(microConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.CompareAll()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, serial) {
		t.Fatalf("enabling telemetry changed the report:\nplain: %+v\ntelemetry: %+v", plain, serial)
	}
}

func deterministicCounters(s telemetry.Snapshot) map[string]int64 {
	out := make(map[string]int64, len(s.Counters))
	for k, v := range s.Counters {
		if !strings.HasPrefix(k, "parallel.") {
			out[k] = v
		}
	}
	return out
}

// TestCheckpointResumeDeterminism is the checkpoint subsystem's executable
// spec at the system level: a CMA2C training run killed after fine-tune
// episode 1 and resumed from its checkpoint (by re-running the identical
// command with -resume) finishes with a byte-identical policy file, an
// identical evaluation report, and training telemetry that sums exactly to
// the unbroken run's.
func TestCheckpointResumeDeterminism(t *testing.T) {
	const seed = 11
	cfg := microConfig(seed, 0)
	cfg.TrainEpisodes = 2
	policyBytes := func(s *System) []byte {
		t.Helper()
		path := filepath.Join(t.TempDir(), "policy.fmck")
		if err := s.SavePolicy(path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Unbroken run, cadence on.
	unbroken, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regU := telemetry.NewRegistry()
	unbroken.SetTelemetry(regU)
	if _, err := unbroken.TrainWithOptions(TrainOptions{CheckpointDir: t.TempDir(), CheckpointEvery: 1, CheckpointKeep: 10}); err != nil {
		t.Fatal(err)
	}
	countersU := deterministicCounters(regU.Snapshot())
	wantPolicy := policyBytes(unbroken)
	wantEval, err := unbroken.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}

	// Crashed run: same command, killed after the first fine-tune episode —
	// modeled as a run whose episode total IS the crash point, which leaves
	// the same episode-1 checkpoint behind (CMA2C has no total-dependent
	// schedule, and the file is cut at the episode boundary either way).
	dir := t.TempDir()
	crashCfg := cfg
	crashCfg.TrainEpisodes = 1
	crashed, err := NewSystem(crashCfg)
	if err != nil {
		t.Fatal(err)
	}
	regC := telemetry.NewRegistry()
	crashed.SetTelemetry(regC)
	if _, err := crashed.TrainWithOptions(TrainOptions{CheckpointDir: dir, CheckpointEvery: 1, CheckpointKeep: 10}); err != nil {
		t.Fatal(err)
	}
	countersC := deterministicCounters(regC.Snapshot())

	// Resumed run: fresh process (fresh System), identical command, -resume.
	resumed, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	regR := telemetry.NewRegistry()
	resumed.SetTelemetry(regR)
	if _, err := resumed.TrainWithOptions(TrainOptions{CheckpointDir: dir, CheckpointEvery: 1, CheckpointKeep: 10, Resume: true}); err != nil {
		t.Fatal(err)
	}
	countersR := deterministicCounters(regR.Snapshot())

	// Byte-identical weights.
	if !bytes.Equal(policyBytes(resumed), wantPolicy) {
		t.Fatal("resumed policy file is not byte-identical to the unbroken run's")
	}
	// Identical evaluation (PE, PF, and every other report field).
	gotEval, err := resumed.Evaluate(FairMove)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotEval, wantEval) {
		t.Fatalf("resumed evaluation diverged:\n%+v\n%+v", gotEval, wantEval)
	}
	// Telemetry: the resumed run does exactly the remaining work — its
	// deterministic training counters plus the crashed prefix's equal the
	// unbroken run's, key for key.
	sum := make(map[string]int64, len(countersC))
	for k, v := range countersC {
		sum[k] += v
	}
	for k, v := range countersR {
		sum[k] += v
	}
	if !reflect.DeepEqual(sum, countersU) {
		t.Fatalf("telemetry counters do not sum to the unbroken run's:\ncrash+resume: %v\nunbroken:     %v", sum, countersU)
	}
}

// TestBaselineCheckpointResumeDeterminism pins the same contract for a
// baseline learner with a total-dependent schedule: DQN's ε decay depends on
// the episode total, so the resumed run must re-run the identical command and
// re-derive the schedule position from the restored episode cursor.
func TestBaselineCheckpointResumeDeterminism(t *testing.T) {
	const seed, total = 17, 2
	city, err := synth.Build(synth.MicroConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	evalPEPF := func(d *policy.DQN) (float64, float64, int) {
		env := sim.New(city, sim.DefaultOptions(1), seed)
		res := policy.Evaluate(d, env, seed+1000)
		return metrics.FleetPE(res), metrics.ProfitFairness(res), res.ServedRequests
	}
	dir := t.TempDir()

	unbroken := policy.NewDQN(0.6, seed)
	unbroken.Pretrain(city, policy.NewGroundTruth(), 1, 1, seed)
	if _, err := unbroken.TrainCheckpointed(city, total, 1, seed, checkpoint.TrainOptions{Dir: dir, Every: 1, Keep: 10}); err != nil {
		t.Fatal(err)
	}
	want, err := checkpoint.Marshal(unbroken)
	if err != nil {
		t.Fatal(err)
	}

	resumed := policy.NewDQN(0.6, seed)
	mid := filepath.Join(dir, checkpoint.FileName(checkpoint.PhaseTrain, 1))
	if _, err := checkpoint.ReadFile(mid, resumed); err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.TrainCheckpointed(city, total, 1, seed, checkpoint.TrainOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := checkpoint.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed DQN is not byte-identical to the unbroken run")
	}
	pe1, pf1, served1 := evalPEPF(unbroken)
	pe2, pf2, served2 := evalPEPF(resumed)
	if pe1 != pe2 || pf1 != pf2 || served1 != served2 {
		t.Fatalf("resumed DQN evaluates differently: PE %v/%v PF %v/%v served %d/%d",
			pe1, pe2, pf1, pf2, served1, served2)
	}
}

// TestShardCountInvariance pins the sharded engine's contract at the system
// level: a full train-and-evaluate pipeline configured with Shards=1, 2, 4,
// and 8 must produce byte-identical trained-policy checkpoints, identical
// evaluation trace digests, identical deterministic telemetry counters, and
// identical reports. The shard count may only change wall-clock, never a
// single byte of the trajectory.
func TestShardCountInvariance(t *testing.T) {
	type outcome struct {
		digest   string
		counters map[string]int64
		policy   []byte
		report   EvalReport
	}
	run := func(shards int) outcome {
		cfg := microConfig(21, 0)
		cfg.Shards = shards
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var events []trace.Event
		s.SetRecorder(func(ev trace.Event) { events = append(events, ev) })
		reg := telemetry.NewRegistry()
		s.SetTelemetry(reg)
		rep, err := s.Evaluate(FairMove) // trains, then evaluates, both sharded
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "policy.fmck")
		if err := s.SavePolicy(path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return outcome{
			digest:   trace.DigestEvents(events),
			counters: deterministicCounters(reg.Snapshot()),
			policy:   data,
			report:   rep,
		}
	}
	ref := run(1)
	if ref.digest == "" {
		t.Fatal("evaluation recorded no events")
	}
	for _, k := range []int{2, 4, 8} {
		got := run(k)
		if got.digest != ref.digest {
			t.Errorf("shards=%d: eval trace digest %s != shards=1 digest %s", k, got.digest, ref.digest)
		}
		if !reflect.DeepEqual(got.counters, ref.counters) {
			t.Errorf("shards=%d: deterministic counters diverged:\n%v\n%v", k, got.counters, ref.counters)
		}
		if !bytes.Equal(got.policy, ref.policy) {
			t.Errorf("shards=%d: trained policy checkpoint is not byte-identical to shards=1", k)
		}
		if !reflect.DeepEqual(got.report, ref.report) {
			t.Errorf("shards=%d: evaluation report diverged:\n%+v\n%+v", k, got.report, ref.report)
		}
	}
}

// AlphaSweep must likewise be invariant to the worker count.
func TestAlphaSweepWorkerInvariance(t *testing.T) {
	alphas := []float64{0.8, 0.2} // unsorted on purpose: output order is sorted
	run := func(workers int) ([]float64, []float64) {
		s, err := NewSystem(microConfig(5, workers))
		if err != nil {
			t.Fatal(err)
		}
		as, rs, err := s.AlphaSweep(alphas)
		if err != nil {
			t.Fatal(err)
		}
		return as, rs
	}
	a1, r1 := run(1)
	a4, r4 := run(4)
	if !reflect.DeepEqual(a1, []float64{0.2, 0.8}) {
		t.Fatalf("alphas not sorted: %v", a1)
	}
	if !reflect.DeepEqual(a1, a4) || !reflect.DeepEqual(r1, r4) {
		t.Fatalf("sweep diverged across worker counts:\nworkers=1: %v %v\nworkers=4: %v %v", a1, r1, a4, r4)
	}
}
