// Package fairmove is the public API of the FairMove reproduction: a
// fairness-aware vehicle displacement system for large-scale electric taxi
// fleets (Wang et al., ICDE 2021).
//
// The package wraps the internal substrates (synthetic city, fleet
// simulator, learning algorithms) behind three operations:
//
//   - NewSystem builds a synthetic city and the untrained FairMove policy.
//   - (*System).Train runs CMA2C training (Algorithm 1 of the paper).
//   - (*System).Evaluate / (*System).CompareAll run any of the six
//     strategies (GT, SD2, TQL, DQN, TBA, FairMove) on identical demand and
//     report the paper's metrics (PE, PF, PRCT, PRIT, PIPE, PIPF).
//
// See examples/ for runnable programs and DESIGN.md for the architecture.
package fairmove

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/synth"
	"repro/internal/telemetry"
)

// Method names one of the six displacement strategies of the evaluation.
type Method string

// The evaluated strategies (Section IV-A).
const (
	GT       Method = "GT"       // ground truth: uncoordinated drivers
	SD2      Method = "SD2"      // shortest-distance displacement
	TQL      Method = "TQL"      // tabular Q-learning
	DQN      Method = "DQN"      // deep Q-network
	TBA      Method = "TBA"      // trip bandit (REINFORCE), competitive
	FairMove Method = "FairMove" // the paper's CMA2C system
)

// Methods lists all strategies in report order.
func Methods() []Method { return []Method{GT, SD2, TQL, DQN, TBA, FairMove} }

// Config sizes the scenario and the training run. Zero values are filled
// with defaults by NewSystem.
type Config struct {
	// Scenario.
	Seed        int64
	Regions     int // paper: 491
	Stations    int // paper: 123
	Fleet       int // paper: 20,130 (default here: 300)
	TripsPerDay int // default: 37 per taxi per day, the paper's ratio
	SlotMinutes int // paper: 10
	Days        int // evaluation horizon (default 2)

	// Learning.
	Alpha float64 // efficiency/fairness weight (paper: 0.6)
	// PretrainEpisodes is the number of demonstration episodes (driven by
	// the coordinated-dispatch teacher) used to warm-start each learner
	// before reward-driven fine-tuning; see DESIGN.md §2 for why repro-scale
	// training needs the warm start. Default 4.
	PretrainEpisodes int
	TrainEpisodes    int // reward-driven fine-tuning episodes (default 6)
	TrainDays        int // days simulated per training episode (default 1)
	// EvalWarmupDays excludes the fleet's start-up transient from metrics
	// (default 1).
	EvalWarmupDays int

	// Workers bounds the goroutines the system may use: CompareAll and
	// AlphaSweep fan each method/α out to its own worker, and the learned
	// policies batch their network inference across the same budget.
	// <= 0 means GOMAXPROCS. Every worker count produces byte-identical
	// results for the same seed — parallelism only changes wall-clock.
	Workers int

	// Shards, when positive, runs every simulation (training and
	// evaluation) on the region-sharded engine with that many shards.
	// Results are invariant in the shard count — Shards=1 and Shards=8
	// produce byte-identical trajectories — but the sharded engine is a
	// different (faster) engine than the sequential default, so Shards=0
	// (legacy) and Shards>0 trajectories differ. See DESIGN.md §Sharding.
	Shards int
}

// DefaultConfig returns a laptop-scale configuration. It preserves the
// paper's intensive ratios — trips per taxi per day and, crucially, taxi
// density per region (the paper has 20,130 taxis over 491 regions ≈ 41 per
// region; matching collapses if the fleet is scattered far thinner than
// that) — by shrinking the region count along with the fleet.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		Fleet:            300,
		SlotMinutes:      10,
		Days:             2,
		Alpha:            0.6,
		PretrainEpisodes: 4,
		TrainEpisodes:    6,
		TrainDays:        1,
		EvalWarmupDays:   1,
	}
}

func (c *Config) fillDefaults() {
	if c.Fleet == 0 {
		c.Fleet = 300
	}
	if c.Regions == 0 {
		// Keep ≈4 taxis per region at repro scale, capped at the paper's 491.
		c.Regions = c.Fleet / 4
		if c.Regions < 20 {
			c.Regions = 20
		}
		if c.Regions > 491 {
			c.Regions = 491
		}
	}
	if c.Stations == 0 {
		// Keep the paper's ≈4:1 region:station ratio.
		c.Stations = c.Regions / 4
		if c.Stations < 4 {
			c.Stations = 4
		}
		if c.Stations > 123 {
			c.Stations = 123
		}
	}
	if c.TripsPerDay == 0 {
		// The paper's fleet sees ≈37 requests per taxi per day. Our
		// simulator keeps taxis on duty around the clock (no driver rest),
		// so the equivalent friction-bound load — where matching quality,
		// not raw capacity, decides outcomes, as in the paper — sits near
		// 15 requests per taxi per day. See DESIGN.md §2.
		c.TripsPerDay = 15 * c.Fleet
	}
	if c.SlotMinutes == 0 {
		c.SlotMinutes = 10
	}
	if c.Days == 0 {
		c.Days = 2
	}
	if c.Alpha == 0 {
		c.Alpha = 0.6
	}
	if c.PretrainEpisodes == 0 {
		c.PretrainEpisodes = 4
	}
	if c.TrainEpisodes == 0 {
		c.TrainEpisodes = 6
	}
	if c.EvalWarmupDays == 0 {
		c.EvalWarmupDays = 1
	}
	if c.TrainDays == 0 {
		c.TrainDays = 1
	}
}

// System is a constructed scenario plus its (possibly trained) policies.
type System struct {
	cfg  Config
	city *synth.City
	fm   *core.FairMove

	// scn is the installed perturbation scenario (nil = clean run). It
	// conditions evaluation only; training always runs on the clean city, so
	// scenario scores measure robustness of a policy, not adaptation to a
	// disclosed fault schedule.
	scn *scenario.Spec

	// tel, when non-nil, receives simulation counters from every evaluation
	// environment and training stats from every learner built after
	// SetTelemetry. The registry is shared — CompareAll's concurrent methods
	// aggregate into it — so facade telemetry reads as fleet-wide totals;
	// use internal/report for per-method snapshots.
	tel *telemetry.Registry

	// rec, when non-nil, receives the canonical event stream of every
	// evaluation environment built after SetRecorder.
	rec sim.Recorder

	// mu guards trained. CompareAll trains methods on concurrent workers;
	// each method is owned by exactly one worker, so only the shared cache
	// needs the lock.
	mu      sync.Mutex
	trained map[Method]policy.Policy
}

// NewSystem builds the synthetic city and an untrained FairMove policy.
func NewSystem(cfg Config) (*System, error) {
	cfg.fillDefaults()
	city, err := synth.Build(synth.Config{
		Seed:        cfg.Seed,
		Regions:     cfg.Regions,
		Stations:    cfg.Stations,
		Fleet:       cfg.Fleet,
		TripsPerDay: cfg.TripsPerDay,
		SlotMinutes: cfg.SlotMinutes,
	})
	if err != nil {
		return nil, fmt.Errorf("fairmove: %w", err)
	}
	ccfg := core.DefaultConfig(cfg.Alpha, cfg.Seed)
	ccfg.Workers = cfg.Workers
	fm, err := core.New(ccfg)
	if err != nil {
		return nil, fmt.Errorf("fairmove: %w", err)
	}
	if cfg.Shards > 0 {
		fm.SetEnvBuilder(shard.Builder(cfg.Shards))
	}
	return &System{
		cfg:     cfg,
		city:    city,
		fm:      fm,
		trained: make(map[Method]policy.Policy),
	}, nil
}

// Config returns the (default-filled) configuration.
func (s *System) Config() Config { return s.cfg }

// City returns the synthetic city this system simulates. The city is
// read-only during simulation; callers may share it across environments.
func (s *System) City() *synth.City { return s.city }

// EvalSeed returns the seed evaluation environments are reset with. It is
// offset from the scenario seed so evaluation demand differs from training
// demand; anything that must be byte-identical to Evaluate (the serve
// equivalence contract) has to reset with this exact value.
func (s *System) EvalSeed() int64 { return s.cfg.Seed + 1000 }

// EvalOptions returns the evaluation protocol options (horizon plus warmup).
// A feed recorded with these options covers exactly the horizon an
// evaluation environment runs.
func (s *System) EvalOptions() sim.Options { return s.evalOptions() }

// EvalEnv builds a fresh evaluation environment — sequential or sharded per
// Config.Shards, with the installed scenario, telemetry, and recorder
// attached. Each call returns an independent environment; the caller owns
// stepping it.
func (s *System) EvalEnv() sim.Environment { return s.newEvalEnv() }

// PolicyFor returns the policy implementing a method, training it first if
// the method is learned and no policy has been trained or loaded yet.
func (s *System) PolicyFor(m Method) (policy.Policy, error) { return s.policyFor(m) }

// LoadPolicyInto reads a FairMove checkpoint into a fresh policy instance,
// leaving the system's own policy untouched. Corrupt, truncated, or
// fingerprint-mismatched files fail closed with an error and no policy.
// This is the validation step behind serve's hot swap: the running policy
// keeps serving until the replacement loads completely.
func (s *System) LoadPolicyInto(path string) (policy.Policy, error) {
	ccfg := core.DefaultConfig(s.cfg.Alpha, s.cfg.Seed)
	ccfg.Workers = s.cfg.Workers
	fm, err := core.New(ccfg)
	if err != nil {
		return nil, fmt.Errorf("fairmove: %w", err)
	}
	fm.SetEnvBuilder(s.envBuilder())
	fm.SetTelemetry(s.tel)
	if _, err := checkpoint.ReadFile(path, fm); err != nil {
		return nil, fmt.Errorf("fairmove: %w", err)
	}
	return fm, nil
}

// SetScenario conditions all subsequent Evaluate/CompareAll calls on a
// perturbation scenario (station outages, demand surges, GPS dropouts, …),
// validated against this system's city. Every method then scores under the
// identical fault schedule. SetScenario(nil) restores clean evaluation.
func (s *System) SetScenario(spec *scenario.Spec) error {
	if spec != nil {
		if err := scenario.ValidateFor(spec, s.city); err != nil {
			return err
		}
	}
	s.scn = spec
	return nil
}

// Scenario returns the installed scenario spec, or nil for clean runs.
func (s *System) Scenario() *scenario.Spec { return s.scn }

// SetTelemetry installs (or, with nil, removes) a metrics registry. All
// subsequent evaluation environments and newly trained learners write their
// counters, gauges, and timers into it. Telemetry is write-only — nothing
// reads a metric back into a decision — so results are byte-identical with
// or without it.
func (s *System) SetTelemetry(r *telemetry.Registry) {
	s.tel = r
	s.fm.SetTelemetry(r)
}

// envBuilder returns the engine selector for this system: nil (the
// sequential default) unless Config.Shards asks for the region-sharded
// engine. Trainers resolve nil via sim.BuildEnv.
func (s *System) envBuilder() sim.EnvBuilder {
	if s.cfg.Shards > 0 {
		return shard.Builder(s.cfg.Shards)
	}
	return nil
}

// newEvalEnv builds an evaluation environment — sequential or sharded per
// Config.Shards — with the installed scenario (if any) attached.
func (s *System) newEvalEnv() sim.Environment {
	env := sim.BuildEnv(s.envBuilder(), s.city, s.evalOptions(), s.cfg.Seed)
	if s.scn != nil {
		// Validated in SetScenario; Attach re-checks against the same city.
		if _, err := scenario.Attach(env, s.scn); err != nil {
			panic("fairmove: " + err.Error())
		}
	}
	env.SetTelemetry(s.tel)
	env.SetRecorder(s.rec)
	return env
}

// SetRecorder installs (or, with nil, removes) a trace recorder that every
// subsequent evaluation environment emits its events into. Like telemetry it
// is write-only: recording cannot perturb a trajectory. Recorders see the
// canonical event order whatever the engine, so digests taken here are the
// cross-engine and cross-shard comparison point.
func (s *System) SetRecorder(r sim.Recorder) { s.rec = r }

// TrainReport summarizes FairMove training.
type TrainReport struct {
	Episodes    int
	MeanReward  []float64 // per episode; the "average reward r" of Table IV
	CriticLoss  []float64
	Transitions int
}

// Train warm-starts FairMove from the coordinated-dispatch teacher and
// then runs CMA2C reward-driven training for the configured number of
// episodes (Algorithm 1).
func (s *System) Train() TrainReport {
	r, _ := s.TrainWithOptions(TrainOptions{}) // no checkpoint dir, no I/O errors
	return r
}

// TrainOptions controls checkpointing and resumption of training.
type TrainOptions struct {
	// CheckpointDir, when non-empty, receives crash-safe checkpoints during
	// training; a final checkpoint is always written when training ends.
	CheckpointDir string
	// CheckpointEvery is the cadence in episodes; <= 0 writes only the final
	// checkpoint of each phase.
	CheckpointEvery int
	// CheckpointKeep bounds how many checkpoints the directory retains
	// (default 3).
	CheckpointKeep int
	// Resume loads the newest valid checkpoint from CheckpointDir before
	// training and continues toward the configured episode totals. With no
	// checkpoint present training starts fresh, so a crashed run is resumed
	// by re-running the identical command. The completed run is
	// byte-identical to one that never crashed (pinned in
	// determinism_test.go).
	Resume bool
}

// TrainWithOptions is Train with checkpoint/resume control.
func (s *System) TrainWithOptions(opts TrainOptions) (TrainReport, error) {
	if opts.Resume && opts.CheckpointDir != "" {
		path, _, err := checkpoint.Latest(opts.CheckpointDir)
		switch {
		case err == nil:
			if _, err := checkpoint.ReadFile(path, s.fm); err != nil {
				return TrainReport{}, fmt.Errorf("fairmove: resume: %w", err)
			}
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Nothing saved yet: fresh start.
		default:
			return TrainReport{}, fmt.Errorf("fairmove: resume: %w", err)
		}
	}
	copts := checkpoint.TrainOptions{Dir: opts.CheckpointDir, Every: opts.CheckpointEvery, Keep: opts.CheckpointKeep}
	if err := s.fm.PretrainCheckpointed(s.city, policy.NewCoordinator(), s.cfg.PretrainEpisodes, s.cfg.TrainDays, s.cfg.Seed, copts); err != nil {
		return TrainReport{}, fmt.Errorf("fairmove: %w", err)
	}
	st, err := s.fm.TrainCheckpointed(s.city, s.cfg.TrainEpisodes, s.cfg.TrainDays, s.cfg.Seed, copts)
	if err != nil {
		return TrainReport{}, fmt.Errorf("fairmove: %w", err)
	}
	s.mu.Lock()
	s.trained[FairMove] = s.fm
	s.mu.Unlock()
	return TrainReport{
		Episodes:    st.Episodes,
		MeanReward:  st.MeanReward,
		CriticLoss:  st.CriticLoss,
		Transitions: st.Transitions,
	}, nil
}

// SavePolicy writes the FairMove policy (trained or not) to path as a
// single checkpoint file — a first-class artifact that later eval or compare
// runs reload instead of retraining.
func (s *System) SavePolicy(path string) error {
	if err := checkpoint.WriteFile(path, s.fm); err != nil {
		return fmt.Errorf("fairmove: %w", err)
	}
	return nil
}

// LoadPolicy restores a FairMove policy saved by SavePolicy (or any training
// checkpoint written under the same configuration) and marks it trained, so
// Evaluate and CompareAll reuse it without retraining. Corrupt or mismatched
// files fail closed: the in-memory policy is left untouched.
func (s *System) LoadPolicy(path string) error {
	if _, err := checkpoint.ReadFile(path, s.fm); err != nil {
		return fmt.Errorf("fairmove: %w", err)
	}
	s.mu.Lock()
	s.trained[FairMove] = s.fm
	s.mu.Unlock()
	return nil
}

// policyFor returns (training if needed) the policy for a method. Training
// runs outside the lock: every method trains on its own environments, its
// own teacher, and rng streams split stably from its own names, so methods
// train concurrently without influencing one another — the property that
// lets CompareAll fan out while staying byte-identical to a serial run.
func (s *System) policyFor(m Method) (policy.Policy, error) {
	s.mu.Lock()
	p, ok := s.trained[m]
	s.mu.Unlock()
	if ok {
		return p, nil
	}
	teacher := policy.NewCoordinator()
	switch m {
	case GT:
		p = policy.NewGroundTruth()
	case SD2:
		p = policy.NewSD2()
	case TQL:
		q := policy.NewTQL(s.cfg.Alpha)
		q.Env = s.envBuilder()
		q.SetTelemetry(s.tel)
		q.Pretrain(s.city, teacher, s.cfg.PretrainEpisodes, s.cfg.TrainDays, s.cfg.Seed)
		q.Train(s.city, s.cfg.TrainEpisodes, s.cfg.TrainDays, s.cfg.Seed)
		p = q
	case DQN:
		d := policy.NewDQN(s.cfg.Alpha, s.cfg.Seed)
		d.Env = s.envBuilder()
		d.Workers = s.cfg.Workers
		d.SetTelemetry(s.tel)
		d.Pretrain(s.city, teacher, s.cfg.PretrainEpisodes, s.cfg.TrainDays, s.cfg.Seed)
		d.Train(s.city, (s.cfg.TrainEpisodes+1)/2, s.cfg.TrainDays, s.cfg.Seed)
		p = d
	case TBA:
		b := policy.NewTBA(s.cfg.Seed)
		b.Env = s.envBuilder()
		b.Workers = s.cfg.Workers
		b.SetTelemetry(s.tel)
		b.Pretrain(s.city, teacher, s.cfg.PretrainEpisodes, s.cfg.TrainDays, s.cfg.Seed)
		b.Train(s.city, (s.cfg.TrainEpisodes+1)/2, s.cfg.TrainDays, s.cfg.Seed)
		p = b
	case FairMove:
		s.Train()
		p = s.fm
	default:
		return nil, fmt.Errorf("fairmove: unknown method %q", m)
	}
	s.mu.Lock()
	s.trained[m] = p
	s.mu.Unlock()
	return p, nil
}

// EvalReport is the outcome of one strategy on the evaluation horizon.
type EvalReport struct {
	Method           Method
	MeanPE           float64 // mean profit efficiency (CNY/h)
	MedianPE         float64
	PF               float64 // profit fairness (variance; smaller = fairer)
	GiniPE           float64
	MedianCruiseMin  float64
	MedianIdleMin    float64
	ServedRequests   int
	UnservedRequests int
	FleetProfitCNY   float64
	ChargeEvents     int
	// Spatial fairness of service across regions.
	FSpatial float64 // 1 − Gini of per-region demand-service ratio
	GiniDSR  float64
	FloorDSR float64 // worst region's demand-service ratio (NaN when no demand)
}

// MarshalJSON emits the report with FloorDSR as null when it is NaN (a
// total demand blackout leaves no region with a service ratio):
// encoding/json refuses non-finite floats, so the raw struct would make
// every blackout report unserializable.
func (r EvalReport) MarshalJSON() ([]byte, error) {
	type alias EvalReport // drops the method set, avoiding recursion
	return json.Marshal(struct {
		alias
		FloorDSR json.RawMessage
	}{alias(r), metrics.JSONFloat(r.FloorDSR)})
}

// Evaluate runs one strategy on the configured horizon. All methods are
// evaluated on the same demand realization (same seed), so reports are
// directly comparable.
func (s *System) Evaluate(m Method) (EvalReport, error) {
	p, err := s.policyFor(m)
	if err != nil {
		return EvalReport{}, err
	}
	res := policy.Evaluate(p, s.newEvalEnv(), s.cfg.Seed+1000)
	return evalReport(m, res), nil
}

// evalOptions returns the common evaluation protocol: the configured
// horizon preceded by warmup days excluded from metrics.
func (s *System) evalOptions() sim.Options {
	opts := sim.DefaultOptions(s.cfg.Days)
	opts.WarmupDays = s.cfg.EvalWarmupDays
	return opts
}

func evalReport(m Method, res *sim.Results) EvalReport {
	r := EvalReport{
		Method:           m,
		MeanPE:           metrics.FleetPE(res),
		PF:               metrics.ProfitFairness(res),
		GiniPE:           stats.Gini(res.PEs()),
		ServedRequests:   res.ServedRequests,
		UnservedRequests: res.UnservedRequests,
		FleetProfitCNY:   res.FleetProfit(),
		ChargeEvents:     len(res.ChargeStats),
		FSpatial:         metrics.SpatialFairness(res),
		GiniDSR:          metrics.GiniDSR(res),
		FloorDSR:         metrics.AccessibilityFloor(res),
	}
	r.MedianPE, _ = stats.Median(res.PEs())
	r.MedianCruiseMin, _ = stats.Median(res.CruiseTimes())
	r.MedianIdleMin, _ = stats.Median(res.IdleTimes())
	return r
}

// Comparison is one strategy's metrics relative to ground truth — one
// column of the paper's Tables II/III and Figs. 15/16.
type Comparison struct {
	EvalReport
	PRCT float64 // % cruise-time reduction vs GT (Table II)
	PRIT float64 // % idle-time reduction vs GT (Table III)
	PIPE float64 // % profit-efficiency increase vs GT (Fig. 15)
	PIPF float64 // % profit-fairness increase vs GT (Fig. 16)
}

// MarshalJSON preserves the flat object shape the embedded EvalReport gives
// the default encoding. Without it the EvalReport.MarshalJSON promoted from
// the embedded field would take over and silently drop the four
// versus-ground-truth percentages.
func (c Comparison) MarshalJSON() ([]byte, error) {
	rep, err := json.Marshal(c.EvalReport)
	if err != nil {
		return nil, err
	}
	extra, err := json.Marshal(struct{ PRCT, PRIT, PIPE, PIPF float64 }{c.PRCT, c.PRIT, c.PIPE, c.PIPF})
	if err != nil {
		return nil, err
	}
	merged := append(rep[:len(rep)-1], ',')
	return append(merged, extra[1:]...), nil
}

// CompareAll evaluates every strategy on the same demand realization and
// reports each against ground truth, in Methods() order.
//
// Each method is fanned out to its own worker with a private environment;
// the shared city is read-only during simulation and every method's rng
// streams are split stably from its own names, so the reduction — always in
// Methods() order — is byte-identical for any worker count.
func (s *System) CompareAll() ([]Comparison, error) {
	ms := Methods()
	results, err := parallel.Map(context.Background(), s.cfg.Workers, len(ms),
		func(_ context.Context, i int) (*sim.Results, error) {
			p, err := s.policyFor(ms[i])
			if err != nil {
				return nil, err
			}
			return policy.Evaluate(p, s.newEvalEnv(), s.cfg.Seed+1000), nil
		})
	if err != nil {
		return nil, err
	}
	g := results[0] // Methods() leads with GT, the comparison base
	out := make([]Comparison, 0, len(ms))
	for i, m := range ms {
		d := results[i]
		out = append(out, Comparison{
			EvalReport: evalReport(m, d),
			PRCT:       metrics.PRCT(g, d),
			PRIT:       metrics.PRIT(g, d),
			PIPE:       metrics.PIPE(g, d),
			PIPF:       metrics.PIPF(g, d),
		})
	}
	return out, nil
}

// AlphaSweep trains a fresh FairMove at each α and returns the mean
// decision reward of the final training episode — the paper's Table IV.
// Keys are sorted ascending in the returned slices.
//
// Each α trains on its own worker with a private FairMove, teacher, and
// environments; results reduce in sorted-α order, so the sweep is
// byte-identical for any worker count.
func (s *System) AlphaSweep(alphas []float64) (sortedAlphas, rewards []float64, err error) {
	sortedAlphas = append([]float64(nil), alphas...)
	sort.Float64s(sortedAlphas)
	rewards, err = parallel.Map(context.Background(), s.cfg.Workers, len(sortedAlphas),
		func(_ context.Context, i int) (float64, error) {
			cfg := core.DefaultConfig(sortedAlphas[i], s.cfg.Seed)
			cfg.Workers = s.cfg.Workers
			fm, err := core.New(cfg)
			if err != nil {
				return 0, err
			}
			fm.SetEnvBuilder(s.envBuilder())
			fm.Pretrain(s.city, policy.NewCoordinator(), s.cfg.PretrainEpisodes, s.cfg.TrainDays, s.cfg.Seed)
			st := fm.Train(s.city, s.cfg.TrainEpisodes, s.cfg.TrainDays, s.cfg.Seed)
			if len(st.MeanReward) == 0 {
				return 0, nil
			}
			return st.MeanReward[len(st.MeanReward)-1], nil
		})
	if err != nil {
		return nil, nil, err
	}
	return sortedAlphas, rewards, nil
}

// SaveModel writes the trained FairMove networks.
func (s *System) SaveModel(w io.Writer) error { return s.fm.Save(w) }

// LoadModel replaces the FairMove policy with networks written by SaveModel.
func (s *System) LoadModel(r io.Reader) error {
	fm, err := core.Load(r, core.DefaultConfig(s.cfg.Alpha, s.cfg.Seed))
	if err != nil {
		return err
	}
	fm.SetEnvBuilder(s.envBuilder())
	fm.SetTelemetry(s.tel)
	s.fm = fm
	s.trained[FairMove] = fm
	return nil
}
