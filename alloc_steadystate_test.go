package fairmove

import (
	"testing"

	"repro/internal/shard"
	"repro/internal/sim"
)

// TestSimStepZeroAllocSteadyState asserts the acceptance criterion of the
// zero-allocation pass directly: once every reusable buffer has reached its
// high-water mark, stepping either engine allocates nothing. Two full
// warm-up episodes on the same seed reach the marks and prove Reset keeps
// them (a Reset that dropped working storage would re-pay growth in the
// measured episode).
func TestSimStepZeroAllocSteadyState(t *testing.T) {
	city := benchCity(t)
	engines := []struct {
		name string
		env  sim.Environment
	}{
		{"legacy", sim.New(city, sim.DefaultOptions(1), 42)},
		{"sharded1", shard.New(city, sim.DefaultOptions(1), 1, 42)},
	}
	for _, tc := range engines {
		t.Run(tc.name, func(t *testing.T) {
			env := tc.env
			for ep := 0; ep < 2; ep++ {
				for !env.Done() {
					env.Step(nil)
				}
				env.Reset(42)
			}
			const runs = 50
			allocs := testing.AllocsPerRun(runs, func() {
				if env.Done() {
					t.Fatal("episode shorter than the measured run; shrink runs")
				}
				env.Step(nil)
			})
			if allocs != 0 {
				t.Errorf("steady-state %s Step allocates %v/op, want 0", tc.name, allocs)
			}
		})
	}
}
